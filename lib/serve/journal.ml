module Json = Sof_obs.Json

type record =
  | Admit of { id : int; time : float; sources : int list; dests : int list }
  | Commit of {
      id : int;
      time : float;
      family : string;
      sources : int list;
      dests : int list;
      walks : Sof.Forest.walk list;
      delivery : (int * int) list;
    }
  | Depart of { id : int; time : float }

let record_id = function
  | Admit { id; _ } | Commit { id; _ } | Depart { id; _ } -> id

let record_time = function
  | Admit { time; _ } | Commit { time; _ } | Depart { time; _ } -> time

(* --- JSON codec -------------------------------------------------------- *)

let num i = Json.Num (float_of_int i)
let ints xs = Json.Arr (List.map num xs)

let json_of_walk (w : Sof.Forest.walk) =
  Json.Obj
    [
      ("source", num w.Sof.Forest.source);
      ("hops", ints (Array.to_list w.Sof.Forest.hops));
      ( "marks",
        Json.Arr
          (List.map
             (fun (m : Sof.Forest.mark) ->
               Json.Obj
                 [ ("pos", num m.Sof.Forest.pos); ("vnf", num m.Sof.Forest.vnf) ])
             w.Sof.Forest.marks) );
    ]

let to_json = function
  | Admit { id; time; sources; dests } ->
      Json.Obj
        [
          ("t", Json.Str "admit");
          ("id", num id);
          ("time", Json.Num time);
          ("sources", ints sources);
          ("dests", ints dests);
        ]
  | Commit { id; time; family; sources; dests; walks; delivery } ->
      Json.Obj
        [
          ("t", Json.Str "commit");
          ("id", num id);
          ("time", Json.Num time);
          ("family", Json.Str family);
          ("sources", ints sources);
          ("dests", ints dests);
          ("walks", Json.Arr (List.map json_of_walk walks));
          ( "delivery",
            Json.Arr
              (List.map (fun (u, v) -> Json.Arr [ num u; num v ]) delivery) );
        ]
  | Depart { id; time } ->
      Json.Obj
        [ ("t", Json.Str "depart"); ("id", num id); ("time", Json.Num time) ]

let to_line r = Json.to_string (to_json r)

(* Decoding is total: any missing/ill-typed field surfaces as [Error],
   which the line parser treats as the torn tail of a crashed write. *)
let ( let* ) r f = Result.bind r f

let need name = function Some v -> Ok v | None -> Error ("missing " ^ name)

let get_int name j =
  let* v = need name (Option.bind (Json.member name j) Json.to_float) in
  if Float.is_integer v then Ok (int_of_float v)
  else Error (name ^ ": not an integer")

let get_float name j =
  need name (Option.bind (Json.member name j) Json.to_float)

let get_str name j = need name (Option.bind (Json.member name j) Json.to_str)

let get_ints name j =
  let* l = need name (Option.bind (Json.member name j) Json.to_list) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match Json.to_float x with
        | Some v when Float.is_integer v -> go (int_of_float v :: acc) rest
        | _ -> Error (name ^ ": not an integer list"))
  in
  go [] l

let walk_of_json j =
  let* source = get_int "source" j in
  let* hops = get_ints "hops" j in
  let* marks_j = need "marks" (Option.bind (Json.member "marks" j) Json.to_list) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest ->
        let* pos = get_int "pos" m in
        let* vnf = get_int "vnf" m in
        go ({ Sof.Forest.pos; vnf } :: acc) rest
  in
  let* marks = go [] marks_j in
  Ok { Sof.Forest.source; hops = Array.of_list hops; marks }

let of_json j =
  let* tag = get_str "t" j in
  let* id = get_int "id" j in
  let* time = get_float "time" j in
  match tag with
  | "admit" ->
      let* sources = get_ints "sources" j in
      let* dests = get_ints "dests" j in
      Ok (Admit { id; time; sources; dests })
  | "depart" -> Ok (Depart { id; time })
  | "commit" ->
      let* family = get_str "family" j in
      let* sources = get_ints "sources" j in
      let* dests = get_ints "dests" j in
      let* walks_j =
        need "walks" (Option.bind (Json.member "walks" j) Json.to_list)
      in
      let rec walks acc = function
        | [] -> Ok (List.rev acc)
        | w :: rest ->
            let* w = walk_of_json w in
            walks (w :: acc) rest
      in
      let* walks = walks [] walks_j in
      let* delivery_j =
        need "delivery" (Option.bind (Json.member "delivery" j) Json.to_list)
      in
      let rec edges acc = function
        | [] -> Ok (List.rev acc)
        | Json.Arr [ u; v ] :: rest -> (
            match (Json.to_float u, Json.to_float v) with
            | Some u, Some v when Float.is_integer u && Float.is_integer v ->
                edges ((int_of_float u, int_of_float v) :: acc) rest
            | _ -> Error "delivery: not an edge")
        | _ -> Error "delivery: not an edge"
      in
      let* delivery = edges [] delivery_j in
      Ok (Commit { id; time; family; sources; dests; walks; delivery })
  | other -> Error ("unknown record type " ^ other)

let of_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> of_json j

(* Crash tolerance: a [kill -9] mid-write leaves at most one torn line at
   the end of the file.  Parsing stops at the first malformed or
   truncated line and keeps the clean prefix — every record before it was
   flushed before the state change it describes, so the prefix is a
   consistent WAL. *)
let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest -> go acc rest
    | line :: rest -> (
        match of_line line with
        | Ok r -> go (r :: acc) rest
        | Error _ -> List.rev acc)
  in
  go [] lines

let load file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_lines s

(* --- writer ------------------------------------------------------------ *)

type writer = { oc : out_channel; mutable records : int }

let open_writer file = { oc = open_out_gen [ Open_append; Open_creat ] 0o644 file; records = 0 }

(* Write-ahead discipline: the record is flushed to the OS before the
   caller mutates in-memory state, so a process kill can lose at most the
   in-flight line (torn tail), never a state change without its record. *)
let append w r =
  output_string w.oc (to_line r);
  output_char w.oc '\n';
  flush w.oc;
  w.records <- w.records + 1;
  Sof_obs.Obs.count "serve.journal_records" 1

let records w = w.records

let close_writer w = close_out w.oc
