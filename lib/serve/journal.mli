(** Write-ahead journal of serving-state changes.

    One JSON object per line ({!Sof_obs.Json}), appended and {e flushed}
    before the in-memory state change it describes — so a [kill -9]
    leaves at most one torn trailing line, which {!parse_lines} discards,
    and the surviving prefix is a consistent write-ahead log from which
    {!Serve.replay} reconstructs the ledger and deployed forests
    bit-identically.

    All integers are encoded as JSON numbers (exact: ids and node
    indices are far below 2{^53}); [%.17g] float formatting makes times
    round-trip exactly. *)

type record =
  | Admit of { id : int; time : float; sources : int list; dests : int list }
      (** request entered the admission queue *)
  | Commit of {
      id : int;
      time : float;
      family : string;  (** winning ladder rung, {!Serve.family_to_string} *)
      sources : int list;
      dests : int list;
      walks : Sof.Forest.walk list;
      delivery : (int * int) list;
    }
      (** forest deployed and its footprint charged; [walks]/[delivery]
          suffice to rebuild the forest on the static instance *)
  | Depart of { id : int; time : float }
      (** deployment released and its footprint discharged *)

val record_id : record -> int
val record_time : record -> float

(** {2 Codec} *)

val to_json : record -> Sof_obs.Json.t
val to_line : record -> string
(** Single-line JSON, no trailing newline. *)

val of_line : string -> (record, string) result

val parse_lines : string -> record list
(** Parse newline-separated records, stopping at the first malformed or
    truncated line (the torn tail of a crashed write); blank lines are
    skipped. *)

val load : string -> record list
(** Read and {!parse_lines} a journal file. *)

(** {2 Writer} *)

type writer

val open_writer : string -> writer
(** Open (append, create) a journal file. *)

val append : writer -> record -> unit
(** Write one record and flush it to the OS — call {e before} mutating
    the state the record describes. *)

val records : writer -> int
(** Records appended through this writer. *)

val close_writer : writer -> unit
