type config = { window : int; threshold : int; cooldown : int }

let default_config = { window = 8; threshold = 4; cooldown = 4 }

type state = Closed | Open of { remaining : int } | Half_open

type t = {
  cfg : config;
  outcomes : bool Queue.t;  (* rolling window; [true] = failure *)
  mutable failures : int;   (* failures currently in [outcomes] *)
  mutable state : state;
  mutable opens : int;
}

let create cfg =
  if cfg.window < 1 then invalid_arg "Breaker: window must be >= 1";
  if cfg.threshold < 1 then invalid_arg "Breaker: threshold must be >= 1";
  if cfg.cooldown < 0 then invalid_arg "Breaker: cooldown must be >= 0";
  { cfg; outcomes = Queue.create (); failures = 0; state = Closed; opens = 0 }

let state t = t.state
let opens t = t.opens
let failures t = t.failures

let reset_window t =
  Queue.clear t.outcomes;
  t.failures <- 0

let trip t =
  t.state <- Open { remaining = t.cfg.cooldown };
  t.opens <- t.opens + 1;
  reset_window t

(* Deterministic by construction: the cooldown counts {e denied calls},
   not wall-clock time, so the same call sequence always walks the same
   Closed -> Open -> Half_open path. *)
let allow t =
  match t.state with
  | Closed | Half_open -> true
  | Open { remaining } ->
      if remaining > 0 then begin
        t.state <- Open { remaining = remaining - 1 };
        false
      end
      else begin
        t.state <- Half_open;
        true
      end

let record t ~ok =
  match t.state with
  | Half_open -> if ok then t.state <- Closed else trip t
  | Open _ ->
      (* a call that slipped through without [allow]: count it only if it
         failed, by re-arming the cooldown *)
      if not ok then t.state <- Open { remaining = t.cfg.cooldown }
  | Closed ->
      Queue.push (not ok) t.outcomes;
      if not ok then t.failures <- t.failures + 1;
      if Queue.length t.outcomes > t.cfg.window then begin
        let evicted = Queue.pop t.outcomes in
        if evicted then t.failures <- t.failures - 1
      end;
      if t.failures >= t.cfg.threshold then trip t
