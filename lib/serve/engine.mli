(** Batched multi-domain solve engine for the serving layer.

    Shards the served-request stream across the {!Sof_util.Pool} domains
    and solves the degradation ladder speculatively in batches, then
    replays the authoritative event loop against the memoized outcomes.
    Three passes:

    + {e discover} — run the event loop with no-op solvers to learn
      which requests get served, in decision order.  Valid because the
      schedule of {!Serve.run_script} is a pure function of the script
      and config: solver outcomes never feed back into queueing, retry
      draws, or server occupancy.
    + {e speculate} — fixed shard assignment by request id
      ([id mod shards]), per-shard FIFO queues on the pool, up to
      [batch_size] requests coalesced per dispatch.  Every shard solves
      against a shared read-only {!Sof_graph.Metric.Cache.snapshot}
      pre-settled with the whole stream's terminals, so closure reuse
      accrues across the run while each request keeps its own Dijkstra
      resumptions synchronized per run.
    + {e serve} — the unmodified event loop (journal WAL, breakers,
      ledger, observability) consumes the memos through a result mux
      that blocks per request, pipelined with pass 2.

    {b Determinism.}  In the machine-deterministic regimes
    ([deadline_ms] of [0] or [infinity]) the result is bit-identical to
    the sequential {!Serve.run_script} for {e any} shard count and batch
    size — pinned by the [engine-identity] proptest oracle.  Under a
    finite nonzero deadline the schedule and WAL contract still hold
    exactly; only solution quality may differ, as it already does
    between two sequential runs on machines of different speed.

    Observability: [engine.batches], [engine.shard_queue_wait] (seconds
    between batch submission and dispatch), [engine.inline_solves]
    (rungs the speculation did not reach), [engine.shards]. *)

type config = {
  shards : int;      (** shard count; [0] means {!Sof_util.Pool.size} *)
  batch_size : int;  (** max requests coalesced per dispatch ([>= 1]) *)
}

val default_config : config
(** [{ shards = 0; batch_size = 8 }]. *)

val run_script :
  ?journal:Journal.writer ->
  ?engine:config ->
  Sof_topology.Topology.t ->
  Serve.config ->
  Sof_workload.Stream.event list ->
  Serve.report
(** Batched counterpart of {!Serve.run_script}; same WAL contract (every
    admit/commit/depart record is flushed before the state change).
    @raise Invalid_argument on a malformed serve or engine config. *)

val run :
  ?journal:Journal.writer ->
  ?engine:config ->
  rng:Sof_util.Rng.t ->
  Sof_topology.Topology.t ->
  Serve.config ->
  Serve.report
(** {!Sof_workload.Stream.script} + {!run_script}. *)

val form_batches :
  shards:int ->
  batch_size:int ->
  shard_of:('a -> int) ->
  'a array ->
  (int * 'a array) list
(** The batch former, exposed for tests.  Splits [xs] into per-shard
    streams by [shard_of] (preserving relative order), cuts each stream
    into chunks of at most [batch_size], and returns [(shard, batch)]
    dispatches round-robined across shards.
    @raise Invalid_argument on non-positive [shards]/[batch_size] or an
    out-of-range [shard_of] result. *)

val report_diff : Serve.report -> Serve.report -> string option
(** First difference between the deterministic surfaces of two reports
    ([None] when identical): scalar counters, responses (minus wall
    clock), journal records, final ledger bits, live deployments.
    Wall-clock-derived fields ([wall_s], latency percentiles,
    [deadline_miss]) are excluded — they differ between any two runs. *)
