module Graph = Sof_graph.Graph
module Metric = Sof_graph.Metric
module Rng = Sof_util.Rng
module Stats = Sof_util.Stats
module Budget = Sof_util.Budget
module Timer = Sof_util.Timer
module Ledger = Sof_cost.Ledger
module Cost_model = Sof_cost.Cost_model
module Online = Sof_workload.Online
module Stream = Sof_workload.Stream
module Obs = Sof_obs.Obs

(* --- configuration ----------------------------------------------------- *)

type family = Lp | Sofda | Est

let family_to_string = function
  | Lp -> "lp-round"
  | Sofda -> "sofda"
  | Est -> "est"

let family_of_string = function
  | "lp-round" | "lp" -> Some Lp
  | "sofda" -> Some Sofda
  | "est" -> Some Est
  | _ -> None

type policy = Reject_newest | Drop_oldest | Edf

let policy_to_string = function
  | Reject_newest -> "reject-newest"
  | Drop_oldest -> "drop-oldest"
  | Edf -> "edf"

let policy_of_string = function
  | "reject-newest" -> Some Reject_newest
  | "drop-oldest" -> Some Drop_oldest
  | "edf" -> Some Edf
  | _ -> None

type config = {
  stream : Stream.config;
  deadline_ms : float;
  grace_ms : float;
  ladder : family list;
  queue_cap : int;
  policy : policy;
  service_time : float;
  queue_deadline : float;
  breaker : Breaker.config;
  retry_max : int;
  retry_base : float;
  retry_jitter : float;
  retry_seed : int;
  outages : (float * float) list;
}

let default_config =
  {
    stream =
      {
        Stream.default_config with
        horizon = 20.0;
        max_utilization = 0.5;
      };
    deadline_ms = 200.0;
    grace_ms = 250.0;
    ladder = [ Sofda ];
    queue_cap = 16;
    policy = Reject_newest;
    service_time = 0.2;
    queue_deadline = infinity;
    breaker = Breaker.default_config;
    retry_max = 3;
    retry_base = 0.25;
    retry_jitter = 0.5;
    retry_seed = 0x5EED;
    outages = [];
  }

let validate_config cfg =
  if cfg.queue_cap < 1 then invalid_arg "Serve: queue_cap must be >= 1";
  if not (cfg.service_time >= 0.0) then
    invalid_arg "Serve: service_time must be >= 0";
  if not (cfg.deadline_ms >= 0.0) then
    invalid_arg "Serve: deadline_ms must be >= 0";
  if not (cfg.grace_ms >= 0.0) then invalid_arg "Serve: grace_ms must be >= 0";
  if not (cfg.queue_deadline > 0.0) then
    invalid_arg "Serve: queue_deadline must be positive";
  if cfg.retry_max < 0 then invalid_arg "Serve: retry_max must be >= 0";
  if not (cfg.retry_base > 0.0) then
    invalid_arg "Serve: retry_base must be positive";
  if not (cfg.retry_jitter >= 0.0) then
    invalid_arg "Serve: retry_jitter must be >= 0";
  List.iter
    (fun (a, b) ->
      if not (b > a) then invalid_arg "Serve: outage window must have a < b")
    cfg.outages

(* Est is the unconditional terminal rung: always affordable, never
   breaker-gated, so the ladder can never strand a servable request. *)
let normalize_ladder ladder =
  List.filter (fun f -> f <> Est) ladder @ [ Est ]

(* --- responses --------------------------------------------------------- *)

type shed_reason = Queue_full | Queue_expired | Fault_exhausted

let shed_reason_to_string = function
  | Queue_full -> "queue-full"
  | Queue_expired -> "queue-expired"
  | Fault_exhausted -> "fault-exhausted"

type status =
  | Served of {
      family : family;
      degraded : bool;
      cost : float;
      marginal : float;
    }
  | Rejected
  | Shed of shed_reason

type response = {
  id : int;
  arrival : float;
  start : float;
  wall_s : float;
  retries : int;
  status : status;
}

type report = {
  arrivals : int;
  served : int;
  rejected : int;
  shed_queue_full : int;
  shed_expired : int;
  shed_fault : int;
  degraded : int;
  deadline_miss : int;
  breaker_opens : int;
  breaker_skips : int;
  retries : int;
  queue_peak : int;
  served_cost_total : float;
  mean_served_cost : float;
  wall_p50 : float;
  wall_p95 : float;
  wall_p99 : float;
  responses : response list;
  records : Journal.record list;
  final_ledger : Ledger.t;
  live : (int * Sof.Forest.t) list;
}

(* --- static instance --------------------------------------------------- *)

(* Mirror of {!Stream.run_script}'s setup, byte for byte: the serving
   layer and the journal replay must price and account against the
   identical static instance or recovery cannot be bit-identical. *)
type instance = {
  w : Online.config;
  vms : int list;
  static_graph : Graph.t;
  static_node_cost : float array;
  ledger : Ledger.t;
}

let instance topo cfg =
  let w = cfg.stream.Stream.workload in
  let graph0, vms, _n_access = Online.augment topo w in
  let static_graph =
    Graph.map_weights graph0 (fun _ _ _ ->
        Cost_model.cost ~load:w.Online.demand ~capacity:w.Online.link_capacity)
  in
  let n = Graph.n static_graph in
  let static_node_cost = Array.make n 0.0 in
  List.iter
    (fun vm ->
      static_node_cost.(vm) <-
        Cost_model.cost ~load:1.0 ~capacity:w.Online.vm_capacity)
    vms;
  let node_capacity =
    Array.init n (fun v ->
        if List.mem v vms then w.Online.vm_capacity else 0.0)
  in
  let ledger =
    Ledger.create ~graph:static_graph ~link_capacity:w.Online.link_capacity
      ~node_capacity
  in
  { w; vms; static_graph; static_node_cost; ledger }

let mk_problem inst ~sources ~dests =
  Sof.Problem.make ~graph:inst.static_graph ~node_cost:inst.static_node_cost
    ~vms:inst.vms ~sources ~dests ~chain_length:inst.w.Online.chain_length

(* --- degradation ladder ------------------------------------------------ *)

(* One rung as a function of its budget slice: [(forest, clean)] where
   [clean] means the family finished its work without its slice expiring
   — a partial (anytime) result still enters the candidate pool, it just
   doesn't stop the fallthrough.  Abstracting the rung behind a function
   is what lets the batched engine substitute memoized speculative
   solves for live ones without touching the walk. *)
type rung_attempt = slice:Budget.t option -> family -> Sof.Forest.t option * bool

let real_attempt cache p ~slice fam =
  let budget = slice in
  match fam with
  | Est -> (Sof_baselines.Baselines.est p, true)
  | Sofda ->
      let r = Sof.Sofda.solve ~cache ?budget p in
      let expired = Budget.check budget in
      ( Option.map (fun (r : Sof.Sofda.report) -> r.Sof.Sofda.forest) r,
        Option.is_some r && not expired )
  | Lp ->
      let r = Sof.Lp_round.solve ~cache ?budget p in
      let expired = Budget.check budget in
      ( Option.map (fun (r : Sof.Lp_round.report) -> r.Sof.Lp_round.forest) r,
        (match r with
        | Some r -> (not r.Sof.Lp_round.fallback) && not expired
        | None -> false) )

type ladder_outcome = {
  winner : (family * Sof.Forest.t) option;
  lad_degraded : bool;
  lad_skips : int;
}

(* Walk the ladder.  [allow]/[record] abstract the circuit breakers (the
   authoritative pass wires in real breakers; speculative passes pass
   always-allow no-ops), [attempt] abstracts the rung solver. *)
let ladder_walk ?fdag ~allow ~record ~ladder ~deadline_ms
    (attempt : rung_attempt) =
  (* Candidate validity and cost in one pass when an evaluation context
     is threaded in — rungs resubmit near-identical forests, so the
     shared context re-evaluates only what a rung changed.  Verdict and
     cost are bit-identical to the legacy pair. *)
  let judge =
    match fdag with
    | Some ctx ->
        fun f ->
          let r = Sof.Fdag.eval ctx f in
          if r.Sof.Fdag.valid then Some r.Sof.Fdag.total_cost else None
    | None ->
        fun f ->
          if Sof.Validate.is_valid f then Some (Sof.Forest.total_cost f)
          else None
  in
  let total =
    if Float.is_finite deadline_ms then Some (Budget.after_ms deadline_ms)
    else None
  in
  let head = List.hd ladder in
  let candidates = ref [] in
  let first_clean = ref None in
  let skips = ref 0 in
  let rec go = function
    | [] -> ()
    | fam :: rest -> (
        let terminal = fam = Est in
        if (not terminal) && not (allow fam) then begin
          incr skips;
          go rest
        end
        else begin
          let slice =
            if terminal then None
            else
              match total with
              | None -> None
              | Some tot ->
                  (* equal split of what's left over the budgeted rungs
                     still ahead: an early rung that returns fast donates
                     its unused time to the rest *)
                  let budgeted_left =
                    List.length
                      (List.filter (fun f -> f <> Est) (fam :: rest))
                  in
                  let rem = Budget.remaining_ns tot in
                  Some
                    (Budget.create
                       ~deadline_ns:
                         (Timer.now_ns () + (rem / max 1 budgeted_left))
                       ())
          in
          let forest, clean = attempt ~slice fam in
          (match forest with
          | Some f -> (
              match judge f with
              | Some c -> candidates := (fam, f, c) :: !candidates
              | None -> ())
          | None -> ());
          let clean_done = clean && Option.is_some forest in
          if not terminal then record fam ~ok:clean_done;
          if clean_done then begin
            if !first_clean = None then first_clean := Some fam
          end
          else go rest
        end)
  in
  go ladder;
  (* cheapest valid completion wins; ties keep the earliest rung *)
  let winner =
    List.fold_left
      (fun acc (fam, f, c) ->
        match acc with
        | Some (_, _, best) when best <= c -> acc
        | _ -> Some (fam, f, c))
      None
      (List.rev !candidates)
  in
  let winner = Option.map (fun (fam, f, _) -> (fam, f)) winner in
  let lad_degraded =
    match winner with None -> false | Some _ -> !first_clean <> Some head
  in
  { winner; lad_degraded; lad_skips = !skips }

(* --- the serving loop -------------------------------------------------- *)

(* The event loop, parameterized over the three seams the batched engine
   needs:
   - [quiet] suppresses every [Obs] emission (schedule-discovery passes
     must not pollute live counters);
   - [make_attempt] supplies the per-request rung solver (invoked before
     the request's wall clock starts, so a blocking result fetch is not
     billed to the request);
   - [wall_of] maps the measured wall seconds of a request to the value
     reported for it (the engine substitutes the speculative solve's
     wall so latency quantiles describe real solver work).
   Everything that decides *which* requests are served, shed, or retried
   — queueing, backoff draws, [server_free_at] — is untouched by these
   hooks: the schedule is a pure function of the script and config, which
   is the keystone of the engine's bit-identity argument. *)
let run_core ?journal ?(quiet = false) ?make_attempt ?wall_of topo cfg events =
  validate_config cfg;
  let inst = instance topo cfg in
  let w = inst.w in
  let cache = Metric.Cache.create () in
  (* Run-long evaluation context for the authoritative (single-domain)
     loop: ladder verdicts and the commit path's footprint/cost share
     node attributes across requests. *)
  let fdag = Sof.Fdag.create () in
  let ladder = normalize_ladder cfg.ladder in
  let breakers =
    List.filter_map
      (fun f -> if f = Est then None else Some (f, Breaker.create cfg.breaker))
      ladder
  in
  let count name n = if not quiet then Obs.count name n in
  let span name f = if quiet then f () else Obs.span name f in
  let allow fam =
    let ok = Breaker.allow (List.assoc fam breakers) in
    if not ok then count "serve.breaker_skips" 1;
    ok
  in
  let record fam ~ok = Breaker.record (List.assoc fam breakers) ~ok in
  let attempt_of =
    match make_attempt with
    | Some f -> f inst
    | None ->
        fun (r : Stream.request) ->
          (* lazily built so problem construction stays inside the
             request's wall-clock window, as it always was *)
          let p =
            lazy
              (mk_problem inst ~sources:r.Stream.sources ~dests:r.Stream.dests)
          in
          fun ~slice fam -> real_attempt cache (Lazy.force p) ~slice fam
  in
  let wall_of =
    match wall_of with
    | Some f -> f
    | None -> fun ~id:_ ~measured_s -> measured_s
  in
  let rng_retry = Rng.create cfg.retry_seed in
  let live : (int, Sof.Forest.t * Stream.footprint) Hashtbl.t =
    Hashtbl.create 64
  in
  let records = ref [] in
  let journal_write r =
    records := r :: !records;
    match journal with None -> () | Some wr -> Journal.append wr r
  in
  let arrivals = ref 0
  and served = ref 0
  and rejected = ref 0
  and shed_queue_full = ref 0
  and shed_expired = ref 0
  and shed_fault = ref 0
  and degraded = ref 0
  and deadline_miss = ref 0
  and breaker_skips = ref 0
  and retries_total = ref 0
  and queue_peak = ref 0
  and served_cost = ref 0.0 in
  let responses = ref [] in
  let queue : Stream.request list ref = ref [] in
  let server_free_at = ref 0.0 in
  let push r = responses := r :: !responses in
  let shed (r : Stream.request) ~at ~retries reason =
    (match reason with
    | Queue_full ->
        incr shed_queue_full;
        count "serve.shed_queue_full" 1
    | Queue_expired ->
        incr shed_expired;
        count "serve.shed_expired" 1
    | Fault_exhausted ->
        incr shed_fault;
        count "serve.shed_fault" 1);
    push
      {
        id = r.Stream.id;
        arrival = r.Stream.arrival;
        start = at;
        wall_s = 0.0;
        retries;
        status = Shed reason;
      }
  in
  let in_outage t =
    List.exists (fun (a, b) -> t >= a && t < b) cfg.outages
  in
  let vdeadline (r : Stream.request) = r.Stream.arrival +. cfg.queue_deadline in
  (* EDF picks the most urgent virtual deadline; the FIFO policies serve
     in arrival order.  Ties break on the smaller id, so the schedule is
     a pure function of the script. *)
  let pick_next () =
    match !queue with
    | [] -> None
    | (x :: rest) as q -> (
        match cfg.policy with
        | Reject_newest | Drop_oldest -> Some (x, rest)
        | Edf ->
            let best =
              List.fold_left
                (fun (best : Stream.request) (r : Stream.request) ->
                  let c = Float.compare (vdeadline r) (vdeadline best) in
                  if c < 0 || (c = 0 && r.Stream.id < best.Stream.id) then r
                  else best)
                x rest
            in
            Some
              ( best,
                List.filter
                  (fun (r : Stream.request) -> r.Stream.id <> best.Stream.id)
                  q ))
  in
  let deadline_limit = (cfg.deadline_ms +. cfg.grace_ms) /. 1000.0 in
  let serve_one (r : Stream.request) ~start =
    (* seeded-jitter exponential backoff through outage windows *)
    let attempts = ref 0 in
    let t = ref start in
    let exhausted = ref false in
    while in_outage !t && not !exhausted do
      if !attempts >= cfg.retry_max then exhausted := true
      else begin
        let jf =
          if cfg.retry_jitter > 0.0 then
            1.0 +. (cfg.retry_jitter *. (Rng.uniform rng_retry -. 0.5))
          else 1.0
        in
        t := !t +. (cfg.retry_base *. (2.0 ** float_of_int !attempts) *. jf);
        incr attempts;
        incr retries_total;
        count "serve.retries" 1
      end
    done;
    if !exhausted then shed r ~at:!t ~retries:!attempts Fault_exhausted
    else begin
      let start = !t in
      let attempt = attempt_of r in
      let wall0 = Timer.now_ns () in
      let out =
        span "serve.request" (fun () ->
            ladder_walk ~fdag ~allow ~record ~ladder
              ~deadline_ms:cfg.deadline_ms attempt)
      in
      let measured_s = float_of_int (Timer.now_ns () - wall0) *. 1e-9 in
      let wall_s = wall_of ~id:r.Stream.id ~measured_s in
      if not quiet then Obs.record "serve.wall_s" wall_s;
      breaker_skips := !breaker_skips + out.lad_skips;
      server_free_at := start +. cfg.service_time;
      let reject () =
        incr rejected;
        count "serve.rejected" 1;
        push
          {
            id = r.Stream.id;
            arrival = r.Stream.arrival;
            start;
            wall_s;
            retries = !attempts;
            status = Rejected;
          }
      in
      match out.winner with
      | None -> reject ()
      | Some (fam, f) ->
          (* the winner was just judged through [fdag], so this eval is a
             memo hit: footprint and cost come from the same single pass *)
          let fr = Sof.Fdag.eval fdag f in
          let fp =
            {
              Stream.fp_edges = fr.Sof.Fdag.fp_edges;
              fp_vms = fr.Sof.Fdag.fp_vms;
            }
          in
          if
            not
              (Stream.fits inst.ledger w
                 ~max_utilization:cfg.stream.Stream.max_utilization fp)
          then reject ()
          else begin
            let marginal = Stream.marginal_footprint_cost inst.ledger w fp in
            (* WAL: the commit record hits the journal before the ledger
               mutates *)
            journal_write
              (Journal.Commit
                 {
                   id = r.Stream.id;
                   time = start;
                   family = family_to_string fam;
                   sources = r.Stream.sources;
                   dests = r.Stream.dests;
                   walks = f.Sof.Forest.walks;
                   delivery = f.Sof.Forest.delivery;
                 });
            Stream.charge inst.ledger w ~sign:1.0 fp;
            Hashtbl.replace live r.Stream.id (f, fp);
            incr served;
            count "serve.served" 1;
            if out.lad_degraded then begin
              incr degraded;
              count "serve.degraded" 1
            end;
            if Float.is_finite cfg.deadline_ms && wall_s > deadline_limit
            then begin
              incr deadline_miss;
              count "serve.deadline_miss" 1
            end;
            let cost = fr.Sof.Fdag.total_cost in
            served_cost := !served_cost +. cost;
            push
              {
                id = r.Stream.id;
                arrival = r.Stream.arrival;
                start;
                wall_s;
                retries = !attempts;
                status =
                  Served { family = fam; degraded = out.lad_degraded; cost; marginal };
              }
          end
    end
  in
  let rec drain upto =
    match pick_next () with
    | None -> ()
    | Some (r, rest) ->
        let start = Float.max !server_free_at r.Stream.arrival in
        if start > upto then ()
        else begin
          queue := rest;
          if Float.is_finite cfg.queue_deadline && start > vdeadline r +. 1e-9
          then shed r ~at:start ~retries:0 Queue_expired
          else serve_one r ~start;
          drain upto
        end
  in
  let enqueue (r : Stream.request) =
    if List.length !queue >= cfg.queue_cap then begin
      match cfg.policy with
      | Reject_newest -> shed r ~at:r.Stream.arrival ~retries:0 Queue_full
      | Drop_oldest -> (
          match !queue with
          | victim :: rest ->
              shed victim ~at:r.Stream.arrival ~retries:0 Queue_full;
              queue := rest @ [ r ]
          | [] -> queue := [ r ])
      | Edf -> (
          (* shed the slackest deadline, which may be the newcomer *)
          let victim =
            List.fold_left
              (fun (best : Stream.request) (x : Stream.request) ->
                let c = Float.compare (vdeadline x) (vdeadline best) in
                if c > 0 || (c = 0 && x.Stream.id > best.Stream.id) then x
                else best)
              r !queue
          in
          shed victim ~at:r.Stream.arrival ~retries:0 Queue_full;
          if victim.Stream.id <> r.Stream.id then
            queue :=
              List.filter
                (fun (x : Stream.request) -> x.Stream.id <> victim.Stream.id)
                !queue
              @ [ r ])
    end
    else queue := !queue @ [ r ];
    queue_peak := max !queue_peak (List.length !queue)
  in
  List.iter
    (fun ev ->
      let t = match ev with
        | Stream.Arrive r -> r.Stream.arrival
        | Stream.Depart d -> d.time
      in
      drain t;
      match ev with
      | Stream.Depart { id; time } ->
          if List.exists (fun (r : Stream.request) -> r.Stream.id = id) !queue
          then begin
            (* the client gave up while we were still queueing it *)
            (match
               List.find_opt
                 (fun (r : Stream.request) -> r.Stream.id = id)
                 !queue
             with
            | Some r -> shed r ~at:time ~retries:0 Queue_expired
            | None -> ());
            queue :=
              List.filter (fun (r : Stream.request) -> r.Stream.id <> id) !queue
          end
          else (
            match Hashtbl.find_opt live id with
            | None -> () (* rejected or shed; nothing deployed *)
            | Some (_, fp) ->
                journal_write (Journal.Depart { id; time });
                Stream.charge inst.ledger w ~sign:(-1.0) fp;
                Hashtbl.remove live id)
      | Stream.Arrive r ->
          incr arrivals;
          count "serve.arrivals" 1;
          journal_write
            (Journal.Admit
               {
                 id = r.Stream.id;
                 time = r.Stream.arrival;
                 sources = r.Stream.sources;
                 dests = r.Stream.dests;
               });
          enqueue r)
    events;
  drain infinity;
  let responses = List.rev !responses in
  let walls =
    List.filter_map
      (fun r -> match r.status with Served _ -> Some r.wall_s | _ -> None)
      responses
  in
  let pct p = if walls = [] then 0.0 else Stats.percentile p walls in
  let live_list =
    Hashtbl.fold (fun id (f, _) acc -> (id, f) :: acc) live []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    arrivals = !arrivals;
    served = !served;
    rejected = !rejected;
    shed_queue_full = !shed_queue_full;
    shed_expired = !shed_expired;
    shed_fault = !shed_fault;
    degraded = !degraded;
    deadline_miss = !deadline_miss;
    breaker_opens =
      List.fold_left (fun acc (_, b) -> acc + Breaker.opens b) 0 breakers;
    breaker_skips = !breaker_skips;
    retries = !retries_total;
    queue_peak = !queue_peak;
    served_cost_total = !served_cost;
    mean_served_cost =
      (if !served = 0 then 0.0 else !served_cost /. float_of_int !served);
    wall_p50 = pct 50.0;
    wall_p95 = pct 95.0;
    wall_p99 = pct 99.0;
    responses;
    records = List.rev !records;
    final_ledger = inst.ledger;
    live = live_list;
  }

let run_script ?journal topo cfg events = run_core ?journal topo cfg events

let run ?journal ~rng topo cfg =
  let _, _, n_access = Online.augment topo cfg.stream.Stream.workload in
  let events = Stream.script ~rng ~n_access cfg.stream in
  run_script ?journal topo cfg events

(* --- crash-consistent recovery ----------------------------------------- *)

type snapshot = {
  ledger : Ledger.t;
  live_forests : (int * Sof.Forest.t) list;
  committed : int;
  departed : int;
  uncommitted : int;
}

let replay topo cfg records =
  let inst = instance topo cfg in
  let w = inst.w in
  let live : (int, Sof.Forest.t * Stream.footprint) Hashtbl.t =
    Hashtbl.create 64
  in
  let admits : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref 0 and departed = ref 0 in
  List.iter
    (function
      | Journal.Admit { id; _ } -> Hashtbl.replace admits id ()
      | Journal.Commit { id; sources; dests; walks; delivery; _ } ->
          let p = mk_problem inst ~sources ~dests in
          let f = Sof.Forest.make p ~walks ~delivery in
          let fp = Stream.footprint_of_forest f in
          Stream.charge inst.ledger w ~sign:1.0 fp;
          Hashtbl.replace live id (f, fp);
          Hashtbl.remove admits id;
          incr committed
      | Journal.Depart { id; _ } -> (
          Hashtbl.remove admits id;
          match Hashtbl.find_opt live id with
          | None -> ()
          | Some (_, fp) ->
              Stream.charge inst.ledger w ~sign:(-1.0) fp;
              Hashtbl.remove live id;
              incr departed))
    records;
  let live_forests =
    Hashtbl.fold (fun id (f, _) acc -> (id, f) :: acc) live []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    ledger = inst.ledger;
    live_forests;
    committed = !committed;
    departed = !departed;
    uncommitted = Hashtbl.length admits;
  }

let recover topo cfg file = replay topo cfg (Journal.load file)

(* --- bit-exact state comparison ---------------------------------------- *)

let bits = Int64.bits_of_float

let ledger_diff l1 l2 =
  let g1 = Ledger.graph l1 and g2 = Ledger.graph l2 in
  if Graph.n g1 <> Graph.n g2 then
    Some
      (Printf.sprintf "graph size mismatch: %d vs %d nodes" (Graph.n g1)
         (Graph.n g2))
  else
    let diff = ref None in
    List.iter
      (fun (u, v, _) ->
        if !diff = None then
          let a = Ledger.edge_load l1 u v and b = Ledger.edge_load l2 u v in
          if bits a <> bits b then
            diff :=
              Some
                (Printf.sprintf "edge (%d,%d) load %.17g vs %.17g" u v a b))
      (Graph.edges g1);
    for v = 0 to Graph.n g1 - 1 do
      if !diff = None then begin
        let a = Ledger.node_load l1 v and b = Ledger.node_load l2 v in
        if bits a <> bits b then
          diff := Some (Printf.sprintf "node %d load %.17g vs %.17g" v a b)
      end
    done;
    !diff

let ledger_equal l1 l2 = ledger_diff l1 l2 = None

let forest_equal (a : Sof.Forest.t) (b : Sof.Forest.t) =
  a.Sof.Forest.walks = b.Sof.Forest.walks
  && a.Sof.Forest.delivery = b.Sof.Forest.delivery

(* The recovery invariant: recharging a fresh ledger from the recovered
   live forests lands on the same bits as the replayed ledger.  Loads are
   sums of [demand] and 1.0 — exactly representable for the stock
   configs — so charge/release cancellation is exact and order drops
   out. *)
let recovery_invariant topo cfg snap =
  let inst = instance topo cfg in
  List.iter
    (fun (_, f) ->
      Stream.charge inst.ledger inst.w ~sign:1.0 (Stream.footprint_of_forest f))
    snap.live_forests;
  match ledger_diff inst.ledger snap.ledger with
  | None -> Ok ()
  | Some d -> Error ("recovery invariant violated: " ^ d)

(* --- engine seams ------------------------------------------------------- *)

module Internal = struct
  type nonrec instance = instance
  type nonrec rung_attempt = rung_attempt

  type nonrec ladder_outcome = ladder_outcome = {
    winner : (family * Sof.Forest.t) option;
    lad_degraded : bool;
    lad_skips : int;
  }

  let instance = instance
  let mk_problem = mk_problem
  let instance_graph i = i.static_graph
  let instance_vms i = i.vms
  let real_attempt = real_attempt
  let normalize_ladder = normalize_ladder
  let ladder_walk = ladder_walk
  let run_core = run_core
end
