(** Per-solver-family circuit breaker for the serving ladder.

    A family that keeps blowing its deadline slice wastes the slice on
    every request before the ladder falls through — the breaker skips it
    outright once failures dominate a rolling window, and probes it again
    after a cooldown.

    The breaker is {e deterministic}: state advances only on [allow] /
    [record] calls (the cooldown counts denied calls, not wall-clock
    time), so a fixed request sequence with fixed outcomes always
    produces the same skip pattern — which is what lets the serve bench
    rows gate on breaker-driven degradation counts. *)

type config = {
  window : int;     (** rolling outcome window size (>= 1) *)
  threshold : int;  (** failures within the window that trip it (>= 1) *)
  cooldown : int;   (** denied calls before a half-open probe (>= 0) *)
}

val default_config : config
(** window 8, threshold 4, cooldown 4. *)

type state =
  | Closed                       (** calls flow; outcomes fill the window *)
  | Open of { remaining : int }  (** deny the next [remaining] calls *)
  | Half_open                    (** one probe call: success closes,
                                     failure re-trips *)

type t

val create : config -> t
(** @raise Invalid_argument on a non-positive window/threshold or
    negative cooldown. *)

val allow : t -> bool
(** May the next call proceed?  [false] consumes one cooldown tick; the
    call that exhausts the cooldown transitions to {!Half_open} and is
    allowed as the probe. *)

val record : t -> ok:bool -> unit
(** Report the outcome of an allowed call.  In [Closed], pushes into the
    rolling window and trips to [Open] at [threshold] failures (clearing
    the window).  In [Half_open], success closes, failure re-trips. *)

val state : t -> state
val opens : t -> int
(** How many times the breaker has tripped. *)

val failures : t -> int
(** Failures currently in the rolling window. *)
