(** Deadline-aware resilient serving layer.

    A resident request loop over the streaming workload model
    ({!Sof_workload.Stream}): requests arrive on a virtual-time script,
    wait in a bounded admission queue, and are served by a {e
    graceful-degradation ladder} of solver families under a real-time
    compute deadline.  Four robustness mechanisms compose:

    - {b Deadline budgets} — each request gets a {!Sof_util.Budget} of
      [deadline_ms]; budgeted rungs of the ladder receive an equal split
      of the remaining time and stop mid-flight through the solvers'
      cooperative cancellation ({!Sof.Sofda}, {!Sof.Lp_round} are
      anytime under a budget).
    - {b Degradation ladder} — the configured family order falls through
      [lp-round → sofda → est]; the terminal {!Sof_baselines.Baselines.est}
      rung is unbudgeted and never skipped, so a servable request is
      always answered.  The {e cheapest valid} completion wins, partial
      (anytime) results included; a request is {e degraded} when the
      preferred family did not complete cleanly.
    - {b Backpressure} — a bounded queue with a shedding policy
      (reject-newest / drop-oldest / earliest-virtual-deadline-first),
      virtual queue deadlines, and seeded-jitter exponential backoff
      through configured outage windows.
    - {b Circuit breakers} — a per-family {!Breaker} skips a rung whose
      failures dominate a rolling window and probes it after a cooldown.

    Every state change is preceded by a flushed {!Journal} record
    (write-ahead), so a [kill -9] loses at most the in-flight request:
    {!replay} reconstructs the ledger and the deployed forests
    bit-identically from the journal prefix.

    Determinism: virtual time (arrivals, queueing, sheds, retries,
    breaker transitions) is a pure function of the script and the
    config.  Only wall-clock latencies and deadline-driven degradation
    depend on the machine; with [deadline_ms = 0] (every budgeted rung
    abandons instantly) or [deadline_ms = infinity] (no budget) the
    entire run is machine-deterministic — the serve bench rows gate on
    exactly those two regimes. *)

(** Solver family, one ladder rung. *)
type family =
  | Lp      (** {!Sof.Lp_round.solve} — LP relax-and-round *)
  | Sofda   (** {!Sof.Sofda.solve} — the paper's 3-approximation *)
  | Est     (** {!Sof_baselines.Baselines.est} — cheapest baseline;
                always terminal, unbudgeted, never breaker-gated *)

val family_to_string : family -> string
val family_of_string : string -> family option

(** Queue shedding policy when the admission queue is full or drained. *)
type policy =
  | Reject_newest  (** full queue bounces the arriving request *)
  | Drop_oldest    (** full queue sheds its oldest entry *)
  | Edf            (** serve earliest virtual deadline first; full queue
                       sheds the slackest deadline (maybe the newcomer) *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type config = {
  stream : Sof_workload.Stream.config;
      (** workload shape, arrival process, horizon, admission headroom *)
  deadline_ms : float;
      (** per-request compute budget (wall-clock ms); [0] degrades every
          budgeted rung instantly, [infinity] disables budgets *)
  grace_ms : float;
      (** tolerance above [deadline_ms] before a served request counts
          as a deadline miss *)
  ladder : family list;
      (** preferred family order; [Est] is appended as the terminal rung
          (and dropped from any earlier position) *)
  queue_cap : int;        (** bounded admission queue size (>= 1) *)
  policy : policy;
  service_time : float;
      (** virtual time the single server occupies per ladder run *)
  queue_deadline : float;
      (** virtual seconds a request may wait before it expires in the
          queue; [infinity] = never *)
  breaker : Breaker.config;
  retry_max : int;        (** outage-bounce retries before shedding *)
  retry_base : float;     (** base backoff (virtual seconds) *)
  retry_jitter : float;
      (** jitter amplitude: each backoff is scaled by
          [1 + jitter * (U(0,1) - 0.5)]; [0] draws nothing from the RNG *)
  retry_seed : int;       (** seed of the dedicated retry RNG *)
  outages : (float * float) list;
      (** virtual-time [(from, to)] windows during which service attempts
          bounce into backoff *)
}

val default_config : config

(** Why a request was shed without a ladder run. *)
type shed_reason =
  | Queue_full        (** admission-queue overflow *)
  | Queue_expired     (** virtual queue deadline passed before service *)
  | Fault_exhausted   (** outage retries exhausted *)

val shed_reason_to_string : shed_reason -> string

type status =
  | Served of {
      family : family;   (** winning ladder rung *)
      degraded : bool;   (** preferred family did not complete cleanly *)
      cost : float;      (** {!Sof.Forest.total_cost} of the deployment *)
      marginal : float;  (** marginal footprint cost at commit time *)
    }
  | Rejected  (** no valid embedding, or admission headroom exceeded *)
  | Shed of shed_reason

type response = {
  id : int;
  arrival : float;   (** virtual arrival time *)
  start : float;     (** virtual service start (or shed decision time) *)
  wall_s : float;    (** real compute seconds (0 for sheds) *)
  retries : int;     (** outage bounces consumed *)
  status : status;
}

type report = {
  arrivals : int;
  served : int;
  rejected : int;
  shed_queue_full : int;
  shed_expired : int;
  shed_fault : int;
  degraded : int;
  deadline_miss : int;
      (** served with [wall_s > (deadline_ms + grace_ms) / 1000] *)
  breaker_opens : int;
  breaker_skips : int;
  retries : int;
  queue_peak : int;
  served_cost_total : float;
  mean_served_cost : float;
  wall_p50 : float;
  wall_p95 : float;
  wall_p99 : float;  (** served-request compute latency percentiles *)
  responses : response list;  (** decision order *)
  records : Journal.record list;
      (** the full WAL stream, also when no file journal was attached *)
  final_ledger : Sof_cost.Ledger.t;
  live : (int * Sof.Forest.t) list;
      (** deployments still live after the script, id-sorted (empty for
          a full script, whose departures all fire) *)
}

val run_script :
  ?journal:Journal.writer ->
  Sof_topology.Topology.t ->
  config ->
  Sof_workload.Stream.event list ->
  report
(** Serve a prepared event script.  When [journal] is given, every
    admit/commit/depart record is flushed to it {e before} the
    corresponding in-memory state change (write-ahead).
    @raise Invalid_argument on a malformed config. *)

val run :
  ?journal:Journal.writer ->
  rng:Sof_util.Rng.t ->
  Sof_topology.Topology.t ->
  config ->
  report
(** {!Sof_workload.Stream.script} + {!run_script}. *)

(** {2 Crash-consistent recovery} *)

type snapshot = {
  ledger : Sof_cost.Ledger.t;
  live_forests : (int * Sof.Forest.t) list;  (** id-sorted *)
  committed : int;
  departed : int;
  uncommitted : int;
      (** admits with neither commit nor depart — in flight (or shed)
          at the crash point *)
}

val replay :
  Sof_topology.Topology.t -> config -> Journal.record list -> snapshot
(** Reconstruct serving state from a journal prefix, applying commits
    (rebuild the forest from its walks/delivery on the same static
    instance, charge its footprint) and departures in record order.
    Replaying the records of an uncrashed run reproduces its final
    ledger and live forests bit-identically; replaying a truncated
    prefix reproduces the state at the crash point. *)

val recover : Sof_topology.Topology.t -> config -> string -> snapshot
(** {!Journal.load} + {!replay}; tolerates a torn trailing line. *)

val recovery_invariant :
  Sof_topology.Topology.t -> config -> snapshot -> (unit, string) result
(** Consistency check after recovery: recharging a fresh ledger from the
    recovered live forests must land on the replayed ledger's exact bits
    (loads are sums of [demand] and [1.0], exactly representable for the
    stock configs, so cancellation is exact and charge order drops
    out).  [Error] carries the first mismatching resource. *)

val ledger_equal : Sof_cost.Ledger.t -> Sof_cost.Ledger.t -> bool
(** Bitwise equality of every edge and node load. *)

val ledger_diff : Sof_cost.Ledger.t -> Sof_cost.Ledger.t -> string option
(** First mismatching resource, human-readable; [None] when equal. *)

val forest_equal : Sof.Forest.t -> Sof.Forest.t -> bool
(** Structural equality of walks and delivery edges. *)

(** {2 Engine seams}

    The hooks {!Engine} builds on.  They expose the serving loop's three
    substitution points — the static instance, the per-rung solver, and
    the event loop itself — without widening the public serving API.
    Outside [lib/serve] these are implementation details: prefer
    {!run_script} / {!Engine.run_script}. *)
module Internal : sig
  type instance
  (** The static pricing instance shared by every request of a run —
      mirrors {!Sof_workload.Stream.run_script}'s setup byte for byte. *)

  val instance : Sof_topology.Topology.t -> config -> instance
  val instance_graph : instance -> Sof_graph.Graph.t
  val instance_vms : instance -> int list

  val mk_problem :
    instance -> sources:int list -> dests:int list -> Sof.Problem.t

  type rung_attempt =
    slice:Sof_util.Budget.t option -> family -> Sof.Forest.t option * bool
  (** One ladder rung as a function of its budget slice: [(forest,
      clean)] where [clean] means the family finished without the slice
      expiring. *)

  val real_attempt : Sof_graph.Metric.Cache.t -> Sof.Problem.t -> rung_attempt
  (** The live solver rung ([Est] / {!Sof.Sofda} / {!Sof.Lp_round}). *)

  val normalize_ladder : family list -> family list
  (** Drop [Est] from any earlier position and append it as terminal. *)

  type ladder_outcome = {
    winner : (family * Sof.Forest.t) option;
        (** cheapest valid completion, earliest rung on ties *)
    lad_degraded : bool;
    lad_skips : int;
  }

  val ladder_walk :
    ?fdag:Sof.Fdag.t ->
    allow:(family -> bool) ->
    record:(family -> ok:bool -> unit) ->
    ladder:family list ->
    deadline_ms:float ->
    rung_attempt ->
    ladder_outcome
  (** Walk a normalized ladder.  [allow]/[record] abstract the circuit
      breakers; the terminal rung is never gated.  [fdag] routes
      candidate validity/cost through a shared evaluation context
      (bit-identical verdicts); contexts are not domain-safe, so each
      engine shard passes its own. *)

  val run_core :
    ?journal:Journal.writer ->
    ?quiet:bool ->
    ?make_attempt:(instance -> Sof_workload.Stream.request -> rung_attempt) ->
    ?wall_of:(id:int -> measured_s:float -> float) ->
    Sof_topology.Topology.t ->
    config ->
    Sof_workload.Stream.event list ->
    report
  (** The event loop behind {!run_script}, parameterized over the seams:
      [quiet] suppresses all [Sof_obs] emissions, [make_attempt]
      substitutes the per-request rung solver (invoked before the
      request's wall clock starts), [wall_of] remaps the reported wall
      seconds.  None of the hooks can influence {e which} requests are
      served, shed, or retried — the schedule is a pure function of the
      script and config. *)
end
