(** Process-wide observability: metrics registry and span tracer.

    Recording is gated on one atomic flag (see {!enable}); while disabled
    — the default — every recording call is a single atomic load and no
    allocation, so instrumentation may sit on solver hot paths.  The
    transparency contract, checked by the [obs-transparency] proptest
    oracle, is that solver outputs are bit-identical whether the sink is
    enabled or not.

    All recording paths are domain-safe: counters and histogram buckets
    are atomics, float accumulators use CAS loops, and the span ring
    buffer and registry are mutex-protected, so {!Sof_util.Pool} workers
    record through the same paths as the coordinator. *)

(** {2 Lifecycle} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn recording on and install the {!Sof_util.Pool} probe. *)

val disable : unit -> unit
(** Turn recording off and remove the pool probe. *)

val reset : unit -> unit
(** Drop every registered metric and all buffered span events. *)

(** {2 Metrics}

    Metrics are interned by name; requesting the same name twice returns
    the same metric, requesting it with a different kind raises
    [Invalid_argument].  Dotted names ([sofda.conflicts]) are
    conventional; exporters sanitize as needed. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
(** Log-scale histogram (quarter-octave buckets from 1 ns up), suited to
    latencies in seconds; exact min/max are tracked alongside. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float option
(** [quantile h q] for [q] in [[0,1]]: [None] when empty; exact for a
    single sample or an all-equal sample; otherwise the geometric
    midpoint of the selected bucket clamped into the observed
    [[min, max]].  Raises [Invalid_argument] outside [[0,1]]. *)

(** {3 Name-keyed one-shot helpers}

    For instrumentation sites that fire rarely relative to their cost: a
    disabled call is one atomic read; an enabled call pays a registry
    lookup. *)

val count : string -> int -> unit
(** [count name by] — increment counter [name] by [by]. *)

val record : string -> float -> unit
(** [record name v] — observe [v] into histogram [name]. *)

val set_gauge : string -> float -> unit

(** {2 Spans} *)

type span_event = {
  span_name : string;
  ts_ns : int;  (** start, monotonic ns (see {!Sof_util.Timer.now_ns}) *)
  dur_ns : int;
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth on the recording domain *)
}

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when enabled, it records a span event on
    completion (also on exception, which re-raises with its backtrace)
    and observes the duration in seconds into histogram [name].  When
    disabled it is exactly [f ()]. *)

val events : unit -> span_event list
(** Buffered span events, oldest first.  The buffer is a bounded ring:
    once full, new events overwrite the oldest (counted by
    {!dropped_spans}). *)

val dropped_spans : unit -> int

val set_trace_capacity : int -> unit
(** Resize the span ring (default 65536).  Discards buffered events. *)

(** {2 Exporters} *)

val table : unit -> string
(** Human-readable tables: counters, gauges, histogram quantiles. *)

val prometheus : unit -> string
(** Prometheus text exposition: counters as [_total] counters, gauges as
    gauges, histograms as summaries with p50/p95/p99 quantile labels plus
    [_sum]/[_count].  Names are sanitized and prefixed [sof_]; metrics
    appear in name order. *)

val chrome_trace : unit -> Json.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}] with one complete
    ["X"] event per span), loadable in Perfetto / about://tracing. *)
