(* Process-wide metrics registry and span tracer.

   Everything is gated on one atomic [enabled] flag, off by default: a
   disabled recording call is a single atomic read and no allocation, so
   instrumentation can sit on solver hot paths (per-candidate chain
   pricing, per-chunk pool accounting) without disturbing them.  The
   contract — checked by the [obs-transparency] oracle — is that solver
   results are bit-identical with the sink enabled or disabled:
   instrumentation only ever reads clocks and writes into the registry,
   never into solver state.

   Domain-safety: counters and histogram buckets are atomics, float
   accumulators use CAS loops, the span ring buffer and the registry are
   mutex-protected.  [Sof_util.Pool] workers record through the same
   paths as the coordinator. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

(* --- atomic float helpers --------------------------------------------- *)

(* [Atomic.compare_and_set] on boxed floats compares the boxes
   physically; retrying with the exact box just read makes the update
   race-free. *)
let rec fupdate a f =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (f old)) then fupdate a f

(* --- metric kinds ----------------------------------------------------- *)

type counter = { cname : string; cval : int Atomic.t }

type gauge = { gname : string; gval : float Atomic.t }

(* Log-scale histogram: bucket 0 catches values <= [hist_v0]; bucket i
   (i >= 1) covers [v0 * gamma^(i-1), v0 * gamma^i) with gamma = 2^(1/4),
   i.e. quarter-octave resolution (at most ~9% relative quantile error)
   from 1 ns up to ~2^63 ns.  Exact min/max are tracked separately so
   degenerate samples (single value, all equal) report exact quantiles. *)
let hist_v0 = 1e-9

let hist_gamma = Float.pow 2.0 0.25

let hist_buckets = 256

let inv_log_gamma = 1.0 /. log hist_gamma

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  hsum : float Atomic.t;
  hmin : float Atomic.t;
  hmax : float Atomic.t;
  hcount : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let metric_name = function
  | C c -> c.cname
  | G g -> g.gname
  | H h -> h.hname

(* --- registry --------------------------------------------------------- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let intern name make classify describe =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs: %S is already a %s" name (describe m)))
      | None ->
          let v = make () in
          Hashtbl.replace registry name (match v with m, _ -> m);
          snd v)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let counter name =
  intern name
    (fun () ->
      let c = { cname = name; cval = Atomic.make 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)
    kind_name

let gauge name =
  intern name
    (fun () ->
      let g = { gname = name; gval = Atomic.make 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)
    kind_name

let histogram name =
  intern name
    (fun () ->
      let h =
        {
          hname = name;
          buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
          hsum = Atomic.make 0.0;
          hmin = Atomic.make infinity;
          hmax = Atomic.make neg_infinity;
          hcount = Atomic.make 0;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)
    kind_name

(* --- recording -------------------------------------------------------- *)

let incr ?(by = 1) c = if enabled () then ignore (Atomic.fetch_and_add c.cval by)

let counter_value c = Atomic.get c.cval

let set g v = if enabled () then Atomic.set g.gval v

let gauge_value g = Atomic.get g.gval

let bucket_of v =
  if v <= hist_v0 then 0
  else
    let i = 1 + int_of_float (floor (log (v /. hist_v0) *. inv_log_gamma)) in
    if i >= hist_buckets then hist_buckets - 1 else i

let observe h v =
  if enabled () then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.hcount 1);
    fupdate h.hsum (fun s -> s +. v);
    fupdate h.hmin (fun m -> if v < m then v else m);
    fupdate h.hmax (fun m -> if v > m then v else m)
  end

let hist_count h = Atomic.get h.hcount

let hist_sum h = Atomic.get h.hsum

(* Quantile estimate: find the bucket holding the q-th ranked sample and
   report its geometric midpoint, clamped into the exact observed
   [min, max].  Degenerate cases are exact: a single sample or an
   all-equal sample has min = max, so the clamp collapses to the true
   value.  Empty histograms have no quantiles. *)
let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Obs.quantile: q out of [0,1]";
  let count = Atomic.get h.hcount in
  if count = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let rec find i acc =
      if i >= hist_buckets then Atomic.get h.hmax
      else
        let acc = acc + Atomic.get h.buckets.(i) in
        if acc >= rank then
          if i = 0 then hist_v0
          else hist_v0 *. Float.pow hist_gamma (float_of_int i -. 0.5)
        else find (i + 1) acc
    in
    let est = find 0 0 in
    let lo = Atomic.get h.hmin and hi = Atomic.get h.hmax in
    Some (Float.min hi (Float.max lo est))
  end

(* Name-keyed one-shot helpers for instrumentation sites: a disabled call
   is one atomic read; an enabled call pays the registry lookup. *)
let count name by = if enabled () then incr ~by (counter name)

let record name v = if enabled () then observe (histogram name) v

let set_gauge name v = if enabled () then set (gauge name) v

(* --- span tracer ------------------------------------------------------ *)

type span_event = {
  span_name : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  depth : int;
}

(* Bounded ring: when full, the oldest events are overwritten and counted
   as dropped — a runaway span producer degrades the trace, never the
   process. *)
let default_trace_capacity = 65536

type ring = {
  mutable events : span_event array;
  mutable head : int; (* next write position *)
  mutable filled : int;
  mutable dropped : int;
}

let ring =
  {
    events = [||];
    head = 0;
    filled = 0;
    dropped = 0;
  }

let ring_mutex = Mutex.create ()

let trace_capacity = ref default_trace_capacity

let set_trace_capacity n =
  Mutex.lock ring_mutex;
  trace_capacity := max 1 n;
  ring.events <- [||];
  ring.head <- 0;
  ring.filled <- 0;
  ring.dropped <- 0;
  Mutex.unlock ring_mutex

let dummy_event = { span_name = ""; ts_ns = 0; dur_ns = 0; tid = 0; depth = 0 }

let push_event e =
  Mutex.lock ring_mutex;
  if Array.length ring.events <> !trace_capacity then begin
    ring.events <- Array.make !trace_capacity dummy_event;
    ring.head <- 0;
    ring.filled <- 0
  end;
  if ring.filled = Array.length ring.events then ring.dropped <- ring.dropped + 1
  else ring.filled <- ring.filled + 1;
  ring.events.(ring.head) <- e;
  ring.head <- (ring.head + 1) mod Array.length ring.events;
  Mutex.unlock ring_mutex

let events () =
  Mutex.lock ring_mutex;
  let n = ring.filled in
  let cap = Array.length ring.events in
  let out =
    List.init n (fun i -> ring.events.((ring.head - n + i + (2 * cap)) mod cap))
  in
  Mutex.unlock ring_mutex;
  out

let dropped_spans () =
  Mutex.lock ring_mutex;
  let d = ring.dropped in
  Mutex.unlock ring_mutex;
  d

let span_depth : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let span name f =
  if not (enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get span_depth in
    Domain.DLS.set span_depth (depth + 1);
    let t0 = Sof_util.Timer.now_ns () in
    let finish () =
      let dur_ns = Sof_util.Timer.now_ns () - t0 in
      Domain.DLS.set span_depth depth;
      push_event
        {
          span_name = name;
          ts_ns = t0;
          dur_ns;
          tid = (Domain.self () :> int);
          depth;
        };
      observe (histogram name) (float_of_int dur_ns *. 1e-9)
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

(* --- pool probe ------------------------------------------------------- *)

let pool_probe =
  {
    Sof_util.Pool.on_region =
      (fun ~chunks ~helpers ->
        count "pool.regions" 1;
        count "pool.chunks_launched" chunks;
        count "pool.helpers_enqueued" helpers);
    on_chunk =
      (fun ~worker -> count (Printf.sprintf "pool.chunks.w%d" worker) 1);
    on_dequeue =
      (fun ~worker ~wait_ns ->
        ignore worker;
        record "pool.queue_wait" (float_of_int wait_ns *. 1e-9));
  }

(* --- lifecycle -------------------------------------------------------- *)

let enable () =
  Atomic.set enabled_flag true;
  Sof_util.Pool.set_probe (Some pool_probe)

let disable () =
  Sof_util.Pool.set_probe None;
  Atomic.set enabled_flag false

let reset () =
  with_registry (fun () -> Hashtbl.reset registry);
  Mutex.lock ring_mutex;
  ring.events <- [||];
  ring.head <- 0;
  ring.filled <- 0;
  ring.dropped <- 0;
  Mutex.unlock ring_mutex

(* --- exporters -------------------------------------------------------- *)

let sorted_metrics () =
  let ms = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.sort (fun a b -> compare (metric_name a) (metric_name b)) ms

let quantiles = [ 0.5; 0.95; 0.99 ]

let table () =
  let b = Buffer.create 1024 in
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | C c -> (c :: cs, gs, hs)
        | G g -> (cs, g :: gs, hs)
        | H h -> (cs, gs, h :: hs))
      ([], [], []) (List.rev (sorted_metrics ()))
  in
  if counters <> [] then begin
    let t = Sof_util.Tbl.create ~caption:"counters" [ "name"; "value" ] in
    List.iter
      (fun c ->
        Sof_util.Tbl.add_row t [ c.cname; string_of_int (counter_value c) ])
      counters;
    Buffer.add_string b (Sof_util.Tbl.render t)
  end;
  if gauges <> [] then begin
    let t = Sof_util.Tbl.create ~caption:"gauges" [ "name"; "value" ] in
    List.iter
      (fun g ->
        Sof_util.Tbl.add_row t [ g.gname; Printf.sprintf "%.6g" (gauge_value g) ])
      gauges;
    Buffer.add_string b (Sof_util.Tbl.render t)
  end;
  if hists <> [] then begin
    let t =
      Sof_util.Tbl.create ~caption:"histograms"
        [ "name"; "count"; "sum"; "p50"; "p95"; "p99"; "max" ]
    in
    List.iter
      (fun h ->
        let q x =
          match quantile h x with
          | Some v -> Printf.sprintf "%.6g" v
          | None -> "-"
        in
        Sof_util.Tbl.add_row t
          [
            h.hname;
            string_of_int (hist_count h);
            Printf.sprintf "%.6g" (hist_sum h);
            q 0.5;
            q 0.95;
            q 0.99;
            (if hist_count h = 0 then "-"
             else Printf.sprintf "%.6g" (Atomic.get h.hmax));
          ])
      hists;
    Buffer.add_string b (Sof_util.Tbl.render t)
  end;
  let d = dropped_spans () in
  if d > 0 then Buffer.add_string b (Printf.sprintf "(%d spans dropped)\n" d);
  Buffer.contents b

(* Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
   names are sanitized and prefixed with the [sof_] namespace. *)
let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "sof_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float x =
  if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let prometheus () =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      let n = prom_name (metric_name m) in
      match m with
      | C c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s_total counter\n" n);
          Buffer.add_string b
            (Printf.sprintf "%s_total %d\n" n (counter_value c))
      | G g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b
            (Printf.sprintf "%s %s\n" n (prom_float (gauge_value g)))
      | H h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
          List.iter
            (fun q ->
              match quantile h q with
              | Some v ->
                  Buffer.add_string b
                    (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q
                       (prom_float v))
              | None -> ())
            quantiles;
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" n (prom_float (hist_sum h)));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (hist_count h)))
    (sorted_metrics ());
  Buffer.contents b

(* Chrome trace-event format: one complete ("X") event per span, loadable
   in about://tracing and Perfetto.  Timestamps are microseconds. *)
let chrome_trace () =
  let event e =
    Json.Obj
      [
        ("name", Json.Str e.span_name);
        ("cat", Json.Str "sof");
        ("ph", Json.Str "X");
        ("ts", Json.Num (float_of_int e.ts_ns /. 1e3));
        ("dur", Json.Num (float_of_int e.dur_ns /. 1e3));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int e.tid));
        ("args", Json.Obj [ ("depth", Json.Num (float_of_int e.depth)) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]
