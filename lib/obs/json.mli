(** Minimal JSON reader/writer for the observability exporters and the
    perf-regression gate.  No external dependencies; numbers are floats;
    non-finite floats print as [null] (JSON has no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendition.  Floats use [%.17g], so every finite
    float round-trips exactly through {!parse}. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] — first binding of [k]; [None] on non-objects. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
