(** Perf-regression gate logic, shared by [bench/perf_gate.exe] and its
    unit tests.

    Compares freshly measured bench rows against a committed baseline:
    mean solution cost must match bit-for-bit up to a float-noise
    epsilon (the solvers are seed-deterministic, so any drift is a
    behaviour change), mean wall-clock may regress only within a
    fractional tolerance, and missing/extra rows always fail so the gate
    cannot pass vacuously.  Every violation carries the row key, the
    baseline and observed values, and the relative drift. *)

type entry = {
  topology : string;
  algo : string;
  mean_cost : float;
  mean_wall_s : float;
}

type violation =
  | Cost_changed of {
      topology : string;
      algo : string;
      baseline : float;
      observed : float;
      drift : float;  (** (observed - baseline) / max 1 |baseline| *)
    }
  | Wall_regressed of {
      topology : string;
      algo : string;
      baseline : float;
      observed : float;
      drift : float;
      tolerance : float;
    }
  | Missing_row of { topology : string; algo : string }
  | Extra_row of { topology : string; algo : string }

val default_cost_eps : float
(** [1e-9] relative. *)

val compare_rows :
  ?cost_eps:float ->
  wall_tolerance:float ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  violation list
(** Violations in baseline order (cost before wall per row), then extra
    rows; empty means the gate passes.  NaN costs on both sides compare
    equal (a NaN baseline pins "no measurement"). *)

val describe : violation -> string
(** One-line human-readable report: row name, baseline, observed,
    relative drift. *)

val rel_drift : baseline:float -> observed:float -> float

val rows_of_json : Json.t -> (entry list, string) result
(** Decode a [BENCH_perf.json]-shaped document ([{"rows": [...]}]). *)
