let default_cost_eps = 1e-9

type entry = {
  topology : string;
  algo : string;
  mean_cost : float;
  mean_wall_s : float;
}

type violation =
  | Cost_changed of {
      topology : string;
      algo : string;
      baseline : float;
      observed : float;
      drift : float;
    }
  | Wall_regressed of {
      topology : string;
      algo : string;
      baseline : float;
      observed : float;
      drift : float;
      tolerance : float;
    }
  | Missing_row of { topology : string; algo : string }
  | Extra_row of { topology : string; algo : string }

let rel_drift ~baseline ~observed =
  (observed -. baseline) /. Float.max 1.0 (abs_float baseline)

let compare_rows ?(cost_eps = default_cost_eps) ~wall_tolerance ~baseline
    ~current () =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let key e = (e.topology, e.algo) in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> key c = key b) current with
      | None -> push (Missing_row { topology = b.topology; algo = b.algo })
      | Some c ->
          let cost_changed =
            match (Float.is_nan b.mean_cost, Float.is_nan c.mean_cost) with
            | true, true -> false
            | true, false | false, true -> true
            | false, false ->
                abs_float (c.mean_cost -. b.mean_cost)
                > cost_eps *. Float.max 1.0 (abs_float b.mean_cost)
          in
          if cost_changed then
            push
              (Cost_changed
                 {
                   topology = b.topology;
                   algo = b.algo;
                   baseline = b.mean_cost;
                   observed = c.mean_cost;
                   drift =
                     rel_drift ~baseline:b.mean_cost ~observed:c.mean_cost;
                 });
          if c.mean_wall_s > b.mean_wall_s *. (1.0 +. wall_tolerance) then
            push
              (Wall_regressed
                 {
                   topology = b.topology;
                   algo = b.algo;
                   baseline = b.mean_wall_s;
                   observed = c.mean_wall_s;
                   drift =
                     rel_drift ~baseline:b.mean_wall_s ~observed:c.mean_wall_s;
                   tolerance = wall_tolerance;
                 }))
    baseline;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> key b = key c) baseline) then
        push (Extra_row { topology = c.topology; algo = c.algo }))
    current;
  List.rev !violations

let describe = function
  | Cost_changed { topology; algo; baseline; observed; drift } ->
      Printf.sprintf
        "%s/%s: mean cost changed %.9f -> %.9f (rel drift %+.3e; solvers \
         are seed-deterministic, regenerate the baseline deliberately)"
        topology algo baseline observed drift
  | Wall_regressed { topology; algo; baseline; observed; drift; tolerance } ->
      Printf.sprintf
        "%s/%s: mean wall %.4fs -> %.4fs (rel drift %+.1f%% > +%.0f%%)"
        topology algo baseline observed (100.0 *. drift)
        (100.0 *. tolerance)
  | Missing_row { topology; algo } ->
      Printf.sprintf "%s/%s: row missing from new results" topology algo
  | Extra_row { topology; algo } ->
      Printf.sprintf "%s/%s: row not in baseline (add it by regenerating)"
        topology algo

let rows_of_json j =
  match Option.bind (Json.member "rows" j) Json.to_list with
  | None -> Error "no \"rows\" array"
  | Some rows -> (
      try
        Ok
          (List.map
             (fun r ->
               let str k =
                 match Option.bind (Json.member k r) Json.to_str with
                 | Some v -> v
                 | None -> failwith ("row missing " ^ k)
               in
               let num k =
                 match Option.bind (Json.member k r) Json.to_float with
                 | Some v -> v
                 | None -> failwith ("row missing " ^ k)
               in
               {
                 topology = str "topology";
                 algo = str "algo";
                 mean_cost = num "mean_cost";
                 mean_wall_s = num "mean_wall_s";
               })
             rows)
      with Failure m -> Error m)
