(* Minimal JSON reader/writer.

   The observability layer emits Chrome trace-event files and the perf
   gate reads benchmark baselines; neither justifies an external JSON
   dependency, so this module implements the small subset the repo needs:
   the full JSON value grammar with numbers held as floats.  Non-finite
   floats have no JSON spelling and are printed as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string x =
  if Float.is_integer x && abs_float x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* %.17g round-trips every float, so costs survive write/read/compare *)
    Printf.sprintf "%.17g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x ->
      if Float.is_finite x then Buffer.add_string b (number_string x)
      else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun m ->
      raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos m)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st "expected %c, found %c" c c'
  | None -> error st "expected %c, found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st "invalid literal"

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents b
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              error st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape %S" hex
            in
            st.pos <- st.pos + 4;
            (* ASCII range only; everything the layer writes is ASCII *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?';
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> error st "bad number %S" s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error st "expected , or } in object"
        in
        members []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> error st "expected , or ] in array"
        in
        elements []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_str = function Str s -> Some s | _ -> None
