type tree = { edges : (int * int * float) list; weight : float }

let dedup_ints xs = List.sort_uniq Int.compare xs

let tree_nodes t =
  dedup_ints (List.concat_map (fun (u, v, _) -> [ u; v ]) t.edges)

let contains_node t v = List.exists (fun (a, b, _) -> a = v || b = v) t.edges

let edge_of g u v =
  match Sof_graph.Graph.edge_weight g u v with
  | Some w -> (min u v, max u v, w)
  | None -> invalid_arg "Steiner: path uses a non-existent edge"

let path_edges g path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (edge_of g a b :: acc) rest
    | _ -> acc
  in
  go [] path

(* KMB core, parameterized by how closure-edge distances and paths are
   obtained: [dist i j] / [path i j] are keyed by positions in [terms]. *)
let kmb g terms ~dist ~path =
  Sof_obs.Obs.span "steiner.kmb" @@ fun () ->
  Sof_obs.Obs.count "steiner.kmb_runs" 1;
  let k = Array.length terms in
  let es = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let d = dist i j in
      if d < infinity then es := (i, j, d) :: !es
    done
  done;
  (* Index pairs (i, j) are distinct: skip the dedup pass. *)
  let cg = Sof_graph.Graph.create_simple ~n:k ~edges:!es in
  let mst1 = Sof_graph.Mst.kruskal cg in
  if List.length mst1 <> k - 1 then
    invalid_arg "Steiner.approx: terminals are disconnected";
  (* Expand every closure edge into a concrete shortest path, take the
     union of the underlying edges, re-span, and prune Steiner leaves. *)
  let union =
    List.concat_map (fun (i, j, _) -> path_edges g (path i j)) mst1
  in
  let sub = Sof_graph.Graph.create ~n:(Sof_graph.Graph.n g) ~edges:union in
  let mst2 = Sof_graph.Mst.kruskal sub in
  let is_terminal = Hashtbl.create k in
  Array.iter (fun v -> Hashtbl.replace is_terminal v ()) terms;
  let pruned =
    Sof_graph.Traversal.prune_steiner_leaves mst2 ~keep:(Hashtbl.mem is_terminal)
  in
  { edges = pruned; weight = Sof_graph.Mst.weight pruned }

let approx g terminals =
  let terminals = dedup_ints terminals in
  match terminals with
  | [] -> invalid_arg "Steiner.approx: no terminals"
  | [ _ ] -> { edges = []; weight = 0.0 }
  | _ ->
      let terms = Array.of_list terminals in
      (* The closure never escapes this call, so a lazily-started local
         closure suffices: KMB's i < j query pattern never sources the
         last terminal, saving one Dijkstra run outright, and runs stop
         at the farthest queried terminal instead of sweeping |V|. *)
      let closure = Sof_graph.Metric.closure ~local:true g terms in
      kmb g terms
        ~dist:(Sof_graph.Metric.distance closure)
        ~path:(Sof_graph.Metric.path closure)

let approx_rooted g ~root terminals = approx g (root :: terminals)

let approx_in g closure terminals =
  let terminals = dedup_ints terminals in
  match terminals with
  | [] -> invalid_arg "Steiner.approx_in: no terminals"
  | [ _ ] -> { edges = []; weight = 0.0 }
  | _ ->
      let terms = Array.of_list terminals in
      (* Map requested terminals to closure indices once. *)
      let closure_terms = Sof_graph.Metric.terminals closure in
      let index = Hashtbl.create (Array.length closure_terms) in
      Array.iteri (fun i v -> Hashtbl.replace index v i) closure_terms;
      let idx = Array.map (fun v -> Hashtbl.find index v) terms in
      kmb g terms
        ~dist:(fun i j -> Sof_graph.Metric.distance closure idx.(i) idx.(j))
        ~path:(fun i j -> Sof_graph.Metric.path closure idx.(i) idx.(j))

(* Dijkstra relaxation seeded with an arbitrary finite initial labelling:
   the closure of [init] under edge relaxations. *)
let relax g init =
  let n = Sof_graph.Graph.n g in
  let dist = Array.copy init in
  let settled = Array.make n false in
  let heap = Sof_graph.Binheap.create () in
  Array.iteri (fun v d -> if d < infinity then Sof_graph.Binheap.push heap d v) dist;
  let rec drain () =
    match Sof_graph.Binheap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if (not settled.(u)) && d <= dist.(u) then begin
          settled.(u) <- true;
          Sof_graph.Graph.iter_neighbors g u (fun v w ->
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Sof_graph.Binheap.push heap nd v
              end)
        end;
        drain ()
  in
  drain ();
  dist

let exact_weight g terminals =
  Sof_obs.Obs.span "steiner.exact_weight" @@ fun () ->
  let terminals = dedup_ints terminals in
  let terms = Array.of_list terminals in
  let k = Array.length terms in
  if k = 0 then invalid_arg "Steiner.exact_weight: no terminals";
  if k > 14 then invalid_arg "Steiner.exact_weight: too many terminals";
  if k = 1 then 0.0
  else begin
    let n = Sof_graph.Graph.n g in
    let full = (1 lsl k) - 1 in
    let dp = Array.make (full + 1) [||] in
    for i = 0 to k - 1 do
      dp.(1 lsl i) <- (Sof_graph.Dijkstra.run g terms.(i)).Sof_graph.Dijkstra.dist
    done;
    for mask = 1 to full do
      if dp.(mask) = [||] then begin
        let best = Array.make n infinity in
        (* Merge step: combine two complementary sub-trees meeting at v. *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let other = mask lxor !sub in
          if !sub < other then begin
            let a = dp.(!sub) and b = dp.(other) in
            for v = 0 to n - 1 do
              let s = a.(v) +. b.(v) in
              if s < best.(v) then best.(v) <- s
            done
          end;
          sub := (!sub - 1) land mask
        done;
        dp.(mask) <- relax g best
      end
    done;
    let answer = Array.fold_left min infinity dp.(full) in
    if answer = infinity then
      invalid_arg "Steiner.exact_weight: terminals are disconnected";
    answer
  end
