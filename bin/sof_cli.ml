(* Command-line front end: draw or load an SOF instance, embed it with a
   chosen algorithm, and print the forest, its cost breakdown, and
   optionally the compiled flow rules or a QoE simulation.

     sof solve --topology softlayer --algo sofda --sources 14 --dests 6
     sof solve --topology cogent --algo est --chain 5 --seed 3
     sof qoe --seed 1
     sof fuzz --count 50 --seed 0
     sof topologies *)

open Cmdliner

(* Topology and algorithm names are closed enumerations: Cmdliner's
   [Arg.enum] rejects unknown values at parse time with a proper error
   message and a nonzero exit, instead of an uncaught [Failure]. *)

let topology_names = [ "softlayer"; "cogent"; "testbed"; "inet1000"; "inet5000" ]

let topology_of_name ~seed name =
  match name with
  | "softlayer" -> Sof_topology.Topology.softlayer ()
  | "cogent" -> Sof_topology.Topology.cogent ()
  | "testbed" -> Sof_topology.Topology.testbed ()
  | "inet1000" ->
      Sof_topology.Topology.inet
        ~rng:(Sof_util.Rng.create (seed + 1))
        ~nodes:1000 ~links:2000 ~dcs:200
  | "inet5000" ->
      Sof_topology.Topology.inet
        ~rng:(Sof_util.Rng.create (seed + 1))
        ~nodes:5000 ~links:10000 ~dcs:2000
  | other -> invalid_arg ("topology_of_name: " ^ other)

let algo_names = [ "sofda"; "sofda-ss"; "lp-round"; "est"; "enemp"; "st" ]

let algo_of_name = function
  | "sofda" ->
      fun p -> Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p)
  | "sofda-ss" ->
      fun p ->
        Sof.Sofda_ss.solve_forest p ~source:(List.hd p.Sof.Problem.sources)
  | "lp-round" -> fun p -> Sof.Lp_round.solve_forest p
  | "est" -> Sof_baselines.Baselines.est
  | "enemp" -> Sof_baselines.Baselines.enemp
  | "st" -> Sof_baselines.Baselines.st
  | other -> invalid_arg ("algo_of_name: " ^ other)

(* --- flags ---------------------------------------------------------- *)

let self_enum names = Arg.enum (List.map (fun s -> (s, s)) names)

let topology_arg =
  let doc =
    Printf.sprintf "Topology: %s." (String.concat ", " topology_names)
  in
  Arg.(
    value
    & opt (self_enum topology_names) "softlayer"
    & info [ "topology"; "t" ] ~doc)

let algo_arg =
  let doc = Printf.sprintf "Algorithm: %s." (String.concat ", " algo_names) in
  Arg.(value & opt (self_enum algo_names) "sofda" & info [ "algo"; "a" ] ~doc)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let sources_arg =
  Arg.(value & opt int 14 & info [ "sources" ] ~doc:"Candidate sources.")

let dests_arg =
  Arg.(value & opt int 6 & info [ "dests" ] ~doc:"Destinations.")

let vms_arg =
  Arg.(value & opt int 25 & info [ "vms" ] ~doc:"Available VMs.")

let chain_arg =
  Arg.(value & opt int 3 & info [ "chain" ] ~doc:"Service chain length.")

let setup_arg =
  Arg.(value & opt float 1.0 & info [ "setup-mult" ] ~doc:"Setup-cost multiplier.")

let domains_arg =
  let doc =
    "Worker domains for the parallel solver (default: $(b,SOF_DOMAINS) or \
     the machine's recommended domain count minus one; 1 forces the \
     sequential path).  Results are identical at every setting."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let set_domains n = Option.iter Sof_util.Pool.set_size n

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"Also print compiled flow rules.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write a Graphviz rendition of the forest to $(docv).")

let draw ~topology ~seed ~sources ~dests ~vms ~chain ~setup =
  let topo = topology_of_name ~seed topology in
  let rng = Sof_util.Rng.create seed in
  let params =
    {
      Sof_workload.Instance.n_vms = vms;
      n_sources = sources;
      n_dests = dests;
      chain_length = chain;
      setup_multiplier = setup;
    }
  in
  (topo, Sof_workload.Instance.draw ~rng topo params)

(* --- solve ---------------------------------------------------------- *)

let solve_cmd =
  let run topology algo seed sources dests vms chain setup rules dot domains =
    set_domains domains;
    let _, problem = draw ~topology ~seed ~sources ~dests ~vms ~chain ~setup in
    Format.printf "%a@." Sof.Problem.pp problem;
    match (algo_of_name algo) problem with
    | None ->
        prerr_endline "no feasible embedding";
        exit 1
    | Some forest ->
        Sof.Validate.check_exn forest;
        Format.printf "%a@." Sof.Forest.pp forest;
        let setup_c, conn = Sof.Forest.cost_breakdown forest in
        Format.printf "setup=%.3f connection=%.3f total=%.3f@." setup_c conn
          (setup_c +. conn);
        (match dot with
        | Some file ->
            let oc = open_out file in
            output_string oc (Sof.Forest.to_dot forest);
            close_out oc;
            Format.printf "wrote %s@." file
        | None -> ());
        if rules then begin
          let compiled = Sof_sdn.Flow_table.compile forest in
          Format.printf "%d flow rules (max %d on one switch)@."
            (List.length compiled)
            (Sof_sdn.Flow_table.max_rules compiled);
          List.iter
            (fun (r : Sof_sdn.Flow_table.rule) ->
              let m =
                match r.Sof_sdn.Flow_table.matcher with
                | Sof_sdn.Flow_table.Final -> "final"
                | Sof_sdn.Flow_table.Stream { source; stage } ->
                    Printf.sprintf "src=%d stage=%d" source stage
              in
              Format.printf "  switch %d [%s] -> %s@."
                r.Sof_sdn.Flow_table.node m
                (String.concat ","
                   (List.map string_of_int r.Sof_sdn.Flow_table.next_hops)))
            compiled
        end
  in
  let term =
    Term.(
      const run $ topology_arg $ algo_arg $ seed_arg $ sources_arg $ dests_arg
      $ vms_arg $ chain_arg $ setup_arg $ rules_arg $ dot_arg $ domains_arg)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Embed a service overlay forest on a topology.")
    term

(* --- compare -------------------------------------------------------- *)

let compare_cmd =
  let run topology seed sources dests vms chain setup domains =
    set_domains domains;
    let _, problem = draw ~topology ~seed ~sources ~dests ~vms ~chain ~setup in
    let t = Sof_util.Tbl.create [ "algorithm"; "total"; "#trees"; "#VMs" ] in
    List.iter
      (fun name ->
        match (algo_of_name name) problem with
        | None -> Sof_util.Tbl.add_row t [ name; "infeasible"; "-"; "-" ]
        | Some f ->
            Sof_util.Tbl.add_row t
              [
                name;
                Printf.sprintf "%.3f" (Sof.Forest.total_cost f);
                string_of_int (List.length f.Sof.Forest.walks);
                string_of_int (List.length (Sof.Forest.enabled_vms f));
              ])
      [ "sofda"; "enemp"; "est"; "st" ];
    Sof_util.Tbl.print t
  in
  let term =
    Term.(
      const run $ topology_arg $ seed_arg $ sources_arg $ dests_arg $ vms_arg
      $ chain_arg $ setup_arg $ domains_arg)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every algorithm on one instance.")
    term

(* --- qoe ------------------------------------------------------------ *)

let qoe_cmd =
  let run algo seed =
    let topo = Sof_topology.Topology.testbed () in
    let rng = Sof_util.Rng.create seed in
    let params =
      {
        Sof_workload.Instance.n_vms = 8;
        n_sources = 2;
        n_dests = 4;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
    in
    let problem = Sof_workload.Instance.draw ~rng topo params in
    match (algo_of_name algo) problem with
    | None ->
        prerr_endline "no feasible embedding";
        exit 1
    | Some forest ->
        let sim_rng = Sof_util.Rng.create (seed + 1) in
        let ms =
          Sof_simnet.Sim.run ~rng:sim_rng Sof_simnet.Sim.default_config forest
        in
        let t =
          Sof_util.Tbl.create
            [ "destination"; "startup (s)"; "re-buffering (s)"; "stalls" ]
        in
        List.iter
          (fun (m : Sof_simnet.Sim.metrics) ->
            Sof_util.Tbl.add_row t
              [
                string_of_int m.Sof_simnet.Sim.dest;
                Printf.sprintf "%.2f" m.Sof_simnet.Sim.startup;
                Printf.sprintf "%.2f" m.Sof_simnet.Sim.rebuffer;
                string_of_int m.Sof_simnet.Sim.stalls;
              ])
          ms;
        Sof_util.Tbl.print t
  in
  Cmd.v
    (Cmd.info "qoe"
       ~doc:"Simulate video QoE on the 14-node testbed for one embedding.")
    Term.(const run $ algo_arg $ seed_arg)

(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let module Prop = Sof_prop.Prop in
  let module Oracles = Sof_prop.Oracles in
  let module Corpus = Sof_prop.Corpus in
  let prop_conv =
    let parse s =
      match Oracles.find s with
      | Some _ -> Ok s
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown property %S; known: %s" s
                 (String.concat ", " (Oracles.names ()))))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Random cases per property (default: each property's own count; \
             crank this up for long offline runs).")
  in
  let props_arg =
    Arg.(
      value
      & opt_all prop_conv []
      & info [ "prop" ] ~docv:"NAME"
          ~doc:"Fuzz only $(docv) (repeatable; default: the whole suite).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Also replay the seed-corpus entries of $(docv).")
  in
  let skip_corpus_arg =
    Arg.(
      value & flag
      & info [ "no-builtin-corpus" ]
          ~doc:"Skip the compiled-in seed-corpus replay.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list-props" ] ~doc:"List properties and exit.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-failures" ] ~docv:"FILE"
          ~doc:
            "On failure, write every shrunk counterexample to $(docv) \
             (report plus a ready-to-commit seed-corpus line) — meant for \
             CI artifact upload.")
  in
  let run count seed props corpus skip_corpus list_props save =
    if list_props then begin
      List.iter print_endline (Oracles.names ());
      `Ok ()
    end
    else begin
      let failures = ref 0 in
      let reports = ref [] in
      let record r = reports := r :: !reports in
      let replay entries =
        List.iter
          (fun e ->
            match Corpus.replay e with
            | Ok () -> Printf.printf "corpus  ok    %s\n%!" (Corpus.pp_entry e)
            | Error msg ->
                incr failures;
                record
                  (Printf.sprintf "# corpus entry regressed\n%s\n%s\n"
                     (Corpus.pp_entry e) msg);
                Printf.printf "corpus  FAIL  %s\n%s\n%!" (Corpus.pp_entry e)
                  msg)
          entries
      in
      if not skip_corpus then replay Corpus.builtin;
      (match corpus with
      | None -> `Ok ()
      | Some file -> (
          match Corpus.load_file file with
          | Ok entries ->
              replay entries;
              `Ok ()
          | Error msg ->
              incr failures;
              `Error (false, msg)))
      |> ignore;
      let selected =
        match props with
        | [] -> Oracles.all
        | names ->
            List.filter_map
              (fun n -> Option.map (fun p -> (p, 100)) (Oracles.find n))
              names
      in
      List.iter
        (fun (p, default_count) ->
          let c = Option.value count ~default:default_count in
          let t0 = Unix.gettimeofday () in
          match Prop.run_packed ~count:c ~seed p with
          | Prop.Passed { count } ->
              Printf.printf "prop    ok    %-18s %5d cases  %.2fs\n%!"
                (Prop.packed_name p) count
                (Unix.gettimeofday () -. t0)
          | Prop.Failed f ->
              incr failures;
              let name = Prop.packed_name p in
              record
                (Printf.sprintf
                   "# %s failed; corpus line to pin once the bug is fixed:\n\
                    %s %d %d pass  # shrunk after %d steps\n%s\n"
                   name name seed c f.Prop.shrink_steps
                   (Prop.pp_failure name f));
              Printf.printf "prop    FAIL  %-18s\n%s\n%!" name
                (Prop.pp_failure name f))
        selected;
      if !failures > 0 then begin
        (match save with
        | Some file ->
            let oc = open_out file in
            List.iter (output_string oc) (List.rev !reports);
            close_out oc;
            Printf.printf "failure reports written to %s\n%!" file
        | None -> ());
        Printf.printf "%d failure(s)\n%!" !failures;
        exit 1
      end;
      `Ok ()
    end
  in
  let term =
    Term.(
      ret
        (const run $ count_arg $ seed_arg $ props_arg $ corpus_arg
       $ skip_corpus_arg $ list_arg $ save_arg))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the property-based oracle suite (long offline fuzzing; see \
          test/ for the CI-sized runs).")
    term

(* --- chaos ----------------------------------------------------------- *)

let chaos_cmd =
  let module Fault = Sof_resilience.Fault in
  let module Repair = Sof_resilience.Repair in
  let module Chaos = Sof_resilience.Chaos in
  let count_arg =
    Arg.(
      value & opt int 25
      & info [ "count" ] ~docv:"N" ~doc:"Failure events to inject.")
  in
  let mtbf_arg =
    Arg.(
      value & opt float 60.0
      & info [ "mtbf" ] ~doc:"Mean seconds between failures.")
  in
  let mttr_arg =
    Arg.(
      value & opt float 15.0
      & info [ "mttr" ] ~doc:"Mean seconds to repair a failed element.")
  in
  let loss_arg =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ]
          ~doc:
            "East-west message loss probability; positive values also run \
             the distributed solver over the lossy fabric and report \
             retransmissions.")
  in
  let run topology seed sources dests vms chain setup count mtbf mttr loss
      domains =
    set_domains domains;
    let _, problem = draw ~topology ~seed ~sources ~dests ~vms ~chain ~setup in
    match Sof.Sofda.solve_forest problem with
    | None ->
        prerr_endline "no feasible embedding";
        exit 1
    | Some forest ->
        let rng = Sof_util.Rng.create (seed + 17) in
        let trace =
          Fault.schedule ~rng ~mtbf ~mttr ~controllers:3 ~count problem
        in
        let report = Chaos.run ~trace forest in
        let t =
          Sof_util.Tbl.create
            [ "time"; "event"; "action"; "churn"; "re-solve"; "served" ]
        in
        List.iter
          (fun (e : Chaos.entry) ->
            Sof_util.Tbl.add_row t
              [
                Printf.sprintf "%.1f" e.Chaos.time;
                Fault.event_to_string e.Chaos.event;
                (match e.Chaos.action with
                | Some a -> Repair.action_to_string a
                | None -> "outage");
                Printf.sprintf "%.2f" e.Chaos.churn;
                (match e.Chaos.resolve_churn with
                | Some rc -> Printf.sprintf "%.2f" rc
                | None -> "-");
                string_of_int e.Chaos.served;
              ])
          report.Chaos.entries;
        Sof_util.Tbl.print t;
        Printf.printf
          "availability %.4f   repair wins %d/%d (ties %d)   total churn \
           %.2f   invalid events %d\n"
          report.Chaos.availability report.Chaos.repair_wins
          report.Chaos.comparisons report.Chaos.repair_ties
          report.Chaos.total_churn report.Chaos.invalid_events;
        Printf.printf "eval wall %.4fs   solve wall %.4fs\n"
          report.Chaos.eval_wall_s report.Chaos.solve_wall_s;
        (* flow-level view: link outage windows against the pristine
           embedding *)
        let horizon =
          List.fold_left
            (fun acc { Fault.time; _ } -> max acc time)
            0.0 trace
          +. mttr
        in
        let outages = Fault.link_outages ~horizon trace in
        let sim_rng = Sof_util.Rng.create (seed + 1) in
        let sim_cfg =
          { Sof_simnet.Sim.default_config with max_time = horizon }
        in
        let ms = Sof_simnet.Sim.run ~rng:sim_rng ~outages sim_cfg forest in
        Printf.printf
          "flow sim: %d link outage windows, mean outage %.1fs, mean \
           re-buffering %.1fs\n"
          (List.length outages)
          (Sof_simnet.Sim.mean_outage ms)
          (Sof_simnet.Sim.mean_rebuffer ms);
        (if loss > 0.0 then
           let faults =
             {
               Sof_sdn.Fabric.rng = Sof_util.Rng.create (seed + 2);
               loss;
               max_retries = 4;
               base_backoff = 0.05;
               jitter = 0.5;
             }
           in
           let fabric = Sof_sdn.Fabric.create ~faults () in
           (* partition the instance's own graph: it includes the VM nodes
              Instance.draw attached to the data centers *)
           let net =
             Sof_sdn.Distributed.create problem.Sof.Problem.graph ~k:3
           in
           let partitioned =
             List.filter_map
               (fun { Fault.event; _ } ->
                 match event with Fault.Partition c -> Some c | _ -> None)
               trace
           in
           (match partitioned with
           | c :: _ -> Sof_sdn.Distributed.partition net c
           | [] -> ());
           match Sof_sdn.Distributed.solve net fabric problem with
           | None -> print_endline "lossy control plane: no embedding"
           | Some st ->
               Printf.printf
                 "lossy control plane: leader %d, %d failovers, %d \
                  retransmits, %d drops, %.2fs backoff\n"
                 st.Sof_sdn.Distributed.leader
                 st.Sof_sdn.Distributed.failovers
                 (Sof_sdn.Fabric.retransmits fabric)
                 (Sof_sdn.Fabric.drops fabric)
                 (Sof_sdn.Fabric.backoff_delay fabric));
        if report.Chaos.invalid_events > 0 then exit 1
  in
  let term =
    Term.(
      const run $ topology_arg $ seed_arg $ sources_arg $ dests_arg $ vms_arg
      $ chain_arg $ setup_arg $ count_arg $ mtbf_arg $ mttr_arg $ loss_arg
      $ domains_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject a seeded failure trace into a deployed forest and report \
          repair actions, availability and repair-vs-resolve cost.")
    term

(* --- profile --------------------------------------------------------- *)

let profile_cmd =
  let module Obs = Sof_obs.Obs in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of every recorded span to \
             $(docv) (load it in Perfetto or about://tracing).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a Prometheus text exposition of all metrics to $(docv).")
  in
  let chaos_count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"N"
          ~doc:
            "After solving, also inject a seeded chaos trace of $(docv) \
             failure events and profile the repair pipeline.")
  in
  let run topology algo seed sources dests vms chain setup domains trace
      metrics chaos_count =
    set_domains domains;
    let _, problem = draw ~topology ~seed ~sources ~dests ~vms ~chain ~setup in
    Obs.reset ();
    Obs.enable ();
    let forest = Obs.span "cli.solve" (fun () -> (algo_of_name algo) problem) in
    (match forest with
    | None ->
        Obs.disable ();
        prerr_endline "no feasible embedding";
        exit 1
    | Some forest ->
        Sof.Validate.check_exn forest;
        Printf.printf "solved: total cost %.3f\n" (Sof.Forest.total_cost forest);
        (match chaos_count with
        | None -> ()
        | Some count ->
            let rng = Sof_util.Rng.create (seed + 17) in
            let fault_trace =
              Sof_resilience.Fault.schedule ~rng ~mtbf:60.0 ~mttr:15.0
                ~controllers:3 ~count problem
            in
            let report = Sof_resilience.Chaos.run ~trace:fault_trace forest in
            Printf.printf "chaos: %d events, availability %.4f\n"
              (List.length report.Sof_resilience.Chaos.entries)
              report.Sof_resilience.Chaos.availability));
    Obs.disable ();
    print_string (Obs.table ());
    (match trace with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Sof_obs.Json.to_string (Obs.chrome_trace ()));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s (%d span events)\n" file
          (List.length (Obs.events ())));
    match metrics with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Obs.prometheus ());
        close_out oc;
        Printf.printf "wrote %s\n" file
  in
  let term =
    Term.(
      const run $ topology_arg $ algo_arg $ seed_arg $ sources_arg $ dests_arg
      $ vms_arg $ chain_arg $ setup_arg $ domains_arg $ trace_arg $ metrics_arg
      $ chaos_count_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Solve one instance with the observability sink enabled and export \
          solver-stage timings as metrics and a Chrome trace.")
    term

(* --- stream ---------------------------------------------------------- *)

let stream_cmd =
  let module Stream = Sof_workload.Stream in
  let module Online = Sof_workload.Online in
  let process_names = [ "poisson"; "diurnal"; "flash" ] in
  let process_arg =
    let doc =
      Printf.sprintf "Arrival process: %s." (String.concat ", " process_names)
    in
    Arg.(value & opt (self_enum process_names) "poisson" & info [ "process" ] ~doc)
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~doc:"Mean arrival rate (requests per unit time).")
  in
  let hold_arg =
    Arg.(
      value & opt float 12.0
      & info [ "mean-hold" ] ~doc:"Mean exponential holding time.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 40.0
      & info [ "horizon" ] ~doc:"Arrivals are generated in [0, horizon).")
  in
  let util_arg =
    Arg.(
      value & opt float 0.6
      & info [ "max-util" ]
          ~doc:"Admission headroom: highest link/VM utilization admitted.")
  in
  let reopt_arg =
    Arg.(
      value & opt int 10
      & info [ "reopt-every" ]
          ~doc:"Batch mode: re-embed all live requests every N arrivals.")
  in
  let mode_names = [ "incremental"; "batch"; "both" ] in
  let mode_arg =
    let doc =
      Printf.sprintf "Embedding engine: %s." (String.concat ", " mode_names)
    in
    Arg.(value & opt (self_enum mode_names) "both" & info [ "mode" ] ~doc)
  in
  let run topology seed mode process rate mean_hold horizon max_util
      reopt_every domains =
    set_domains domains;
    let topo = topology_of_name ~seed topology in
    let workload =
      match topology with
      | "cogent" -> Online.cogent_config
      | _ -> Online.softlayer_config
    in
    let process =
      match process with
      | "poisson" -> Stream.Poisson { rate }
      | "diurnal" ->
          Stream.Diurnal
            { base = rate /. 2.0; peak = rate *. 2.0; period = horizon /. 2.0 }
      | "flash" ->
          Stream.Flash
            {
              base = rate /. 2.0;
              burst_rate = rate *. 4.0;
              burst_every = horizon /. 4.0;
              burst_len = horizon /. 16.0;
            }
      | other -> invalid_arg ("stream process: " ^ other)
    in
    let cfg =
      {
        Stream.workload;
        process;
        mean_hold;
        horizon;
        max_utilization = max_util;
      }
    in
    let _, _, n_access = Online.augment topo workload in
    let events = Stream.script ~rng:(Sof_util.Rng.create seed) ~n_access cfg in
    let modes =
      match mode with
      | "incremental" -> [ ("incremental", Stream.Incremental) ]
      | "batch" -> [ ("batch", Stream.Batch { reopt_every }) ]
      | _ ->
          [
            ("incremental", Stream.Incremental);
            ("batch", Stream.Batch { reopt_every });
          ]
    in
    let t =
      Sof_util.Tbl.create
        [
          "mode"; "arrivals"; "accepted"; "accept %"; "amortized cost";
          "re-opt churn"; "rungs s/r/p"; "peak util"; "p95 embed (ms)";
          "eval wall (ms)"; "solve wall (ms)"; "closure reuse";
        ]
    in
    let module Obs = Sof_obs.Obs in
    List.iter
      (fun (label, mode) ->
        Obs.reset ();
        Obs.enable ();
        let r, reuse =
          Fun.protect
            ~finally:(fun () ->
              Obs.disable ();
              Obs.reset ())
            (fun () ->
              let r = Stream.run_script ~mode topo cfg events in
              (r, Obs.counter_value (Obs.counter "metric.closure_reuse")))
        in
        Sof_util.Tbl.add_row t
          [
            label;
            string_of_int r.Stream.arrivals;
            string_of_int r.Stream.accepted;
            Printf.sprintf "%.1f" (100.0 *. r.Stream.acceptance_ratio);
            Printf.sprintf "%.3f" r.Stream.amortized_cost;
            Printf.sprintf "%.1f" r.Stream.reopt_churn;
            Printf.sprintf "%d/%d/%d" r.Stream.spliced r.Stream.rescoped
              r.Stream.repriced;
            Printf.sprintf "%.3f" r.Stream.peak_utilization;
            Printf.sprintf "%.2f" (1000.0 *. r.Stream.embed_wall_p95);
            Printf.sprintf "%.2f" (1000.0 *. r.Stream.eval_wall_s);
            Printf.sprintf "%.2f" (1000.0 *. r.Stream.solve_wall_s);
            string_of_int reuse;
          ])
      modes;
    Sof_util.Tbl.print t;
    Printf.printf
      "%d events (%d arrivals) on %s; both engines serve the same seeded \
       script\n"
      (List.length events)
      (List.length
         (List.filter (function Stream.Arrive _ -> true | _ -> false) events))
      topology
  in
  let term =
    Term.(
      const run $ topology_arg $ seed_arg $ mode_arg $ process_arg $ rate_arg
      $ hold_arg $ horizon_arg $ util_arg $ reopt_arg $ domains_arg)
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Serve a streaming workload (arrivals and departures) with \
          admission control, comparing incremental embedding against \
          periodic batch re-optimization.")
    term

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let module Stream = Sof_workload.Stream in
  let module Online = Sof_workload.Online in
  let module Serve = Sof_serve.Serve in
  let module Journal = Sof_serve.Journal in
  let deadline_arg =
    Arg.(
      value & opt float 200.0
      & info [ "deadline-ms" ]
          ~doc:
            "Per-request compute budget in wall-clock milliseconds; 0 \
             degrades every budgeted solver instantly, negative disables \
             the deadline.")
  in
  let grace_arg =
    Arg.(
      value & opt float 250.0
      & info [ "grace-ms" ]
          ~doc:"Tolerance above the deadline before a deadline miss.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~doc:"Bounded admission-queue capacity.")
  in
  let policy_names = [ "reject-newest"; "drop-oldest"; "edf" ] in
  let policy_arg =
    let doc =
      Printf.sprintf "Queue shedding policy: %s."
        (String.concat ", " policy_names)
    in
    Arg.(
      value
      & opt (self_enum policy_names) "reject-newest"
      & info [ "policy" ] ~doc)
  in
  let ladder_arg =
    Arg.(
      value & opt string "sofda"
      & info [ "ladder" ]
          ~doc:
            "Comma-separated degradation ladder (lp-round, sofda, est); est \
             is always appended as the unbudgeted terminal rung.")
  in
  let process_arg =
    Arg.(
      value
      & opt (self_enum [ "poisson"; "flash" ]) "poisson"
      & info [ "process" ] ~doc:"Arrival process: poisson, flash.")
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~doc:"Mean arrival rate (requests per unit time).")
  in
  let hold_arg =
    Arg.(
      value & opt float 12.0
      & info [ "mean-hold" ] ~doc:"Mean exponential holding time.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 20.0
      & info [ "horizon" ] ~doc:"Arrivals are generated in [0, horizon).")
  in
  let util_arg =
    Arg.(
      value & opt float 0.6
      & info [ "max-util" ]
          ~doc:"Admission headroom: highest link/VM utilization admitted.")
  in
  let service_arg =
    Arg.(
      value & opt float 0.2
      & info [ "service-time" ]
          ~doc:"Virtual service time the single server spends per request.")
  in
  let qdeadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "queue-deadline" ]
          ~doc:
            "Virtual seconds a request may wait in the queue before \
             expiring; 0 means never.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write-ahead journal file (append; flushed per record).")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Do not serve: replay the --journal file, report the recovered \
             state and check the recovery invariant.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (self_enum [ "sequential"; "batched" ]) "sequential"
      & info [ "engine" ]
          ~doc:
            "Solve engine: sequential (one request at a time) or batched \
             (shard the stream across the domain pool; bit-identical under \
             a 0 or infinite deadline).")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Shard count for --engine batched; 0 uses the pool size \
             (--domains).")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch-size" ]
          ~doc:"Requests coalesced per dispatch for --engine batched.")
  in
  let run topology seed deadline_ms grace_ms queue policy ladder process rate
      mean_hold horizon max_util service_time queue_deadline journal recover
      engine shards batch_size domains =
    set_domains domains;
    let topo = topology_of_name ~seed topology in
    let workload =
      match topology with
      | "cogent" -> Online.cogent_config
      | _ -> Online.softlayer_config
    in
    let process =
      match process with
      | "flash" ->
          Stream.Flash
            {
              base = rate /. 2.0;
              burst_rate = rate *. 4.0;
              burst_every = horizon /. 4.0;
              burst_len = horizon /. 16.0;
            }
      | _ -> Stream.Poisson { rate }
    in
    let ladder =
      List.map
        (fun s ->
          match Serve.family_of_string (String.trim s) with
          | Some f -> f
          | None -> invalid_arg ("serve ladder: unknown family " ^ s))
        (String.split_on_char ',' ladder)
    in
    let policy =
      match Serve.policy_of_string policy with
      | Some p -> p
      | None -> invalid_arg ("serve policy: " ^ policy)
    in
    let cfg =
      {
        Serve.default_config with
        stream =
          {
            Stream.workload;
            process;
            mean_hold;
            horizon;
            max_utilization = max_util;
          };
        deadline_ms = (if deadline_ms < 0.0 then infinity else deadline_ms);
        grace_ms;
        ladder;
        queue_cap = queue;
        policy;
        service_time;
        queue_deadline =
          (if queue_deadline <= 0.0 then infinity else queue_deadline);
      }
    in
    if recover then begin
      match journal with
      | None ->
          prerr_endline "sof serve --recover requires --journal FILE";
          exit 2
      | Some file ->
          let snap = Serve.recover topo cfg file in
          Printf.printf
            "recovered %s: %d committed, %d departed, %d live, %d \
             uncommitted in flight\n"
            file snap.Serve.committed snap.Serve.departed
            (List.length snap.Serve.live_forests)
            snap.Serve.uncommitted;
          (match Serve.recovery_invariant topo cfg snap with
          | Ok () -> print_endline "recovery invariant: OK (bit-exact)"
          | Error m ->
              Printf.printf "recovery invariant: FAIL — %s\n" m;
              exit 1)
    end
    else begin
      let writer = Option.map Journal.open_writer journal in
      let report =
        Fun.protect
          ~finally:(fun () -> Option.iter Journal.close_writer writer)
          (fun () ->
            let rng = Sof_util.Rng.create seed in
            match engine with
            | "batched" ->
                Sof_serve.Engine.run ?journal:writer
                  ~engine:{ Sof_serve.Engine.shards; batch_size }
                  ~rng topo cfg
            | _ -> Serve.run ?journal:writer ~rng topo cfg)
      in
      let t =
        Sof_util.Tbl.create
          [
            "arrivals"; "served"; "rejected"; "shed q/exp/fault"; "degraded";
            "miss"; "breaker o/s"; "retries"; "p95 (ms)"; "mean cost";
          ]
      in
      Sof_util.Tbl.add_row t
        [
          string_of_int report.Serve.arrivals;
          string_of_int report.Serve.served;
          string_of_int report.Serve.rejected;
          Printf.sprintf "%d/%d/%d" report.Serve.shed_queue_full
            report.Serve.shed_expired report.Serve.shed_fault;
          string_of_int report.Serve.degraded;
          string_of_int report.Serve.deadline_miss;
          Printf.sprintf "%d/%d" report.Serve.breaker_opens
            report.Serve.breaker_skips;
          string_of_int report.Serve.retries;
          Printf.sprintf "%.2f" (1000.0 *. report.Serve.wall_p95);
          Printf.sprintf "%.3f" report.Serve.mean_served_cost;
        ];
      Sof_util.Tbl.print t;
      (match journal with
      | Some file ->
          Printf.printf "journal: %d records -> %s\n"
            (List.length report.Serve.records)
            file
      | None -> ());
      Printf.printf
        "queue peak %d; ladder %s under %s deadline\n" report.Serve.queue_peak
        (String.concat " -> "
           (List.map Serve.family_to_string
              (List.filter (fun f -> f <> Serve.Est) cfg.Serve.ladder
              @ [ Serve.Est ])))
        (if Float.is_finite cfg.Serve.deadline_ms then
           Printf.sprintf "%.0fms" cfg.Serve.deadline_ms
         else "no")
    end
  in
  let term =
    Term.(
      const run $ topology_arg $ seed_arg $ deadline_arg $ grace_arg
      $ queue_arg $ policy_arg $ ladder_arg $ process_arg $ rate_arg
      $ hold_arg $ horizon_arg $ util_arg $ service_arg $ qdeadline_arg
      $ journal_arg $ recover_arg $ engine_arg $ shards_arg $ batch_arg
      $ domains_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident serving loop: deadline-budgeted degradation ladder, \
          bounded admission queue with load shedding, circuit breakers and \
          a crash-consistent write-ahead journal.")
    term

(* --- topologies ----------------------------------------------------- *)

let topologies_cmd =
  let run () =
    List.iter
      (fun name ->
        print_endline
          (Sof_topology.Topology.stats (topology_of_name ~seed:0 name)))
      [ "softlayer"; "cogent"; "testbed"; "inet1000" ]
  in
  Cmd.v
    (Cmd.info "topologies" ~doc:"List the built-in topologies.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sof" ~version:"1.0.0"
      ~doc:"Service Overlay Forest embedding for software-defined cloud networks."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; compare_cmd; qoe_cmd; fuzz_cmd; chaos_cmd; profile_cmd;
            stream_cmd; serve_cmd; topologies_cmd;
          ]))
